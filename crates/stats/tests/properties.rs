//! Property-based tests for the statistics substrate.

use donorpulse_stats::bootstrap::{bootstrap_ci, BootstrapConfig};
use donorpulse_stats::contingency::chi_square_independence;
use donorpulse_stats::correlation::{pearson, spearman};
use donorpulse_stats::descriptive::{mean, sample_variance, RunningStats};
use donorpulse_stats::distance::{
    bhattacharyya, cosine, euclidean, hellinger, js_divergence, manhattan,
};
use donorpulse_stats::distribution::{normal_cdf, normal_quantile};
use donorpulse_stats::rank::average_ranks;
use donorpulse_stats::risk::{RelativeRisk, RiskTable};
use proptest::prelude::*;

/// Strategy: a discrete probability distribution of dimension `n`.
fn distribution(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01..1.0f64, n).prop_map(|v| {
        let s: f64 = v.iter().sum();
        v.into_iter().map(|x| x / s).collect()
    })
}

fn sample(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, n)
}

proptest! {
    #[test]
    fn correlation_bounded(x in sample(12), y in sample(12)) {
        if let Ok(c) = pearson(&x, &y) {
            prop_assert!((-1.0..=1.0).contains(&c.r));
            prop_assert!((0.0..=1.0).contains(&c.p_value));
        }
        if let Ok(c) = spearman(&x, &y) {
            prop_assert!((-1.0..=1.0).contains(&c.r));
        }
    }

    #[test]
    fn spearman_invariant_under_monotone_transform(x in sample(10), y in sample(10)) {
        // exp() is strictly monotone -> identical ranks -> identical rho.
        let y_t: Vec<f64> = y.iter().map(|v| (v / 1e3).exp()).collect();
        if let (Ok(a), Ok(b)) = (spearman(&x, &y), spearman(&x, &y_t)) {
            prop_assert!((a.r - b.r).abs() < 1e-9);
        }
    }

    #[test]
    fn ranks_are_permutation_invariant_sum(x in sample(20)) {
        let n = x.len() as f64;
        let total: f64 = average_ranks(&x).iter().sum();
        prop_assert!((total - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn distances_are_symmetric_nonnegative(p in distribution(6), q in distribution(6)) {
        for f in [bhattacharyya, hellinger, euclidean, manhattan, cosine, js_divergence] {
            let d1 = f(&p, &q).unwrap();
            let d2 = f(&q, &p).unwrap();
            prop_assert!(d1 >= 0.0);
            prop_assert!((d1 - d2).abs() < 1e-10);
        }
    }

    #[test]
    fn distance_to_self_is_zero(p in distribution(6)) {
        prop_assert!(bhattacharyya(&p, &p).unwrap().abs() < 1e-9);
        prop_assert!(hellinger(&p, &p).unwrap().abs() < 1e-7);
        prop_assert!(euclidean(&p, &p).unwrap() == 0.0);
        prop_assert!(js_divergence(&p, &p).unwrap().abs() < 1e-12);
    }

    #[test]
    fn hellinger_triangle_inequality(
        p in distribution(5),
        q in distribution(5),
        r in distribution(5),
    ) {
        let pq = hellinger(&p, &q).unwrap();
        let qr = hellinger(&q, &r).unwrap();
        let pr = hellinger(&p, &r).unwrap();
        prop_assert!(pr <= pq + qr + 1e-9);
    }

    #[test]
    fn normal_quantile_roundtrip(p in 0.001..0.999f64) {
        let x = normal_quantile(p).unwrap();
        prop_assert!((normal_cdf(x) - p).abs() < 1e-5);
    }

    #[test]
    fn running_stats_agrees_with_batch(x in sample(30)) {
        let mut rs = RunningStats::new();
        x.iter().for_each(|&v| rs.push(v));
        prop_assert!((rs.mean().unwrap() - mean(&x).unwrap()).abs() < 1e-6);
        prop_assert!(
            (rs.sample_variance().unwrap() - sample_variance(&x).unwrap()).abs()
                < 1e-4 * sample_variance(&x).unwrap().max(1.0)
        );
    }

    #[test]
    fn relative_risk_inversion(
        a in 1u64..500, extra_in in 1u64..500,
        c in 1u64..500, extra_out in 1u64..500,
    ) {
        let t = RiskTable {
            cases_in: a,
            total_in: a + extra_in,
            cases_out: c,
            total_out: c + extra_out,
        };
        let swapped = RiskTable {
            cases_in: t.cases_out,
            total_in: t.total_out,
            cases_out: t.cases_in,
            total_out: t.total_in,
        };
        let rr = RelativeRisk::from_table(t, 0.05).unwrap();
        let inv = RelativeRisk::from_table(swapped, 0.05).unwrap();
        // Swapping inside/outside inverts the RR and mirrors the CI.
        prop_assert!((rr.rr * inv.rr - 1.0).abs() < 1e-9);
        prop_assert!((rr.ci_low * inv.ci_high - 1.0).abs() < 1e-6);
        // CI always brackets the point estimate.
        prop_assert!(rr.ci_low <= rr.rr && rr.rr <= rr.ci_high);
        // Excess and deficit are mutually exclusive.
        prop_assert!(!(rr.is_excess() && rr.is_deficit()));
    }

    #[test]
    fn scaling_both_sides_preserves_rr(
        a in 1u64..100, extra_in in 1u64..100,
        c in 1u64..100, extra_out in 1u64..100,
        k in 2u64..10,
    ) {
        let t1 = RiskTable { cases_in: a, total_in: a + extra_in, cases_out: c, total_out: c + extra_out };
        let t2 = RiskTable {
            cases_in: a * k,
            total_in: (a + extra_in) * k,
            cases_out: c * k,
            total_out: (c + extra_out) * k,
        };
        let r1 = RelativeRisk::from_table(t1, 0.05).unwrap();
        let r2 = RelativeRisk::from_table(t2, 0.05).unwrap();
        prop_assert!((r1.rr - r2.rr).abs() < 1e-9);
        // More data shrinks the interval.
        prop_assert!(r2.ci_high - r2.ci_low <= r1.ci_high - r1.ci_low + 1e-9);
    }

    #[test]
    fn bootstrap_ci_brackets_point(data in prop::collection::vec(-50.0..50.0f64, 5..60)) {
        let cfg = BootstrapConfig { resamples: 200, confidence: 0.9, seed: 3 };
        let est = bootstrap_ci(&data, cfg, |d| d.iter().sum::<f64>() / d.len() as f64).unwrap();
        prop_assert!(est.ci_low <= est.point + 1e-12);
        prop_assert!(est.point <= est.ci_high + 1e-12);
        prop_assert!(est.ci_low <= est.ci_high);
    }

    #[test]
    fn chi_square_never_negative(
        table in prop::collection::vec(prop::collection::vec(1u64..50, 3..5), 2..5)
    ) {
        // Rows are ragged-protected: truncate to the first row's width.
        let width = table[0].len();
        let table: Vec<Vec<u64>> = table.into_iter().map(|mut r| { r.truncate(width); r })
            .filter(|r| r.len() == width).collect();
        if table.len() < 2 { return Ok(()); }
        let t = chi_square_independence(&table).unwrap();
        prop_assert!(t.statistic >= 0.0);
        prop_assert!((0.0..=1.0).contains(&t.p_value));
        prop_assert!((0.0..=1.0).contains(&t.cramers_v));
    }

    #[test]
    fn proportional_rows_are_independent(
        base in prop::collection::vec(1u64..20, 3..6),
        k in 2u64..5,
    ) {
        let scaled: Vec<u64> = base.iter().map(|&v| v * k).collect();
        let t = chi_square_independence(&[base, scaled]).unwrap();
        prop_assert!(t.statistic < 1e-9, "chi2 = {}", t.statistic);
        prop_assert!(t.p_value > 0.999);
    }
}
