//! Statistics substrate for `donorpulse`.
//!
//! Everything the paper's evaluation leans on statistically lives here:
//!
//! * **Descriptive statistics** ([`descriptive`]) — means, variances,
//!   medians, quantiles used throughout the dataset summary (Table I).
//! * **Ranking with ties** ([`rank`]) — average-rank assignment, the
//!   building block of Spearman correlation.
//! * **Correlation** ([`correlation`]) — Pearson and Spearman coefficients
//!   with significance tests; the paper reports a Spearman correlation of
//!   `r = .84, p < .05` between organ popularity on Twitter and national
//!   transplant counts (Fig. 2a).
//! * **Relative risk** ([`risk`]) — Eq. 4's inside-vs-outside prevalence
//!   ratio with the Katz log confidence interval and the significance rule
//!   `log(RR) − z·σ > 0` at `α = 0.05` used to highlight organs per state
//!   (Fig. 5).
//! * **Probability distributions** ([`distribution`]) — `erf`, the normal
//!   pdf/cdf/quantile, and Student's t tail probabilities (via the
//!   regularized incomplete beta function) for correlation p-values.
//! * **Histograms** ([`histogram`]) — the binned/ranked views behind
//!   Figs. 2–4.
//! * **Distances** ([`distance`]) — Bhattacharyya (the affinity the paper
//!   uses for state clustering, Fig. 6), Hellinger, Jensen–Shannon,
//!   Euclidean, Manhattan, cosine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod contingency;
pub mod correlation;
pub mod descriptive;
pub mod distance;
pub mod distribution;
pub mod histogram;
pub mod rank;
pub mod risk;

mod error;

pub use error::StatsError;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, StatsError>;
