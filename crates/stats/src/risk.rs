//! Relative risk with the Katz log confidence interval.
//!
//! Eq. 4 of the paper defines the relative risk of organ `i` in region `r`
//! as `RR_ir = ρ_ir / ρ_in`: the prevalence of users mentioning the organ
//! *inside* the region over the prevalence *outside* it. Because
//! `log(RR)` is approximately normal, an organ is *highlighted* in a state
//! when `log(RR) − z_α · σ_log(RR) > 0` at `α = 0.05` (`z = 1.96`) — i.e.
//! the lower confidence limit of `RR` exceeds 1 (Fig. 5).

use crate::distribution::z_critical;
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// A 2×2 exposure table for relative risk:
/// `cases_in / total_in` inside the region versus
/// `cases_out / total_out` outside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RiskTable {
    /// Users inside the region who mention the organ.
    pub cases_in: u64,
    /// All users inside the region.
    pub total_in: u64,
    /// Users outside the region who mention the organ.
    pub cases_out: u64,
    /// All users outside the region.
    pub total_out: u64,
}

/// The relative-risk estimate with its log-scale confidence interval.
///
/// ```
/// use donorpulse_stats::risk::{RelativeRisk, RiskTable};
///
/// // 20% prevalence inside vs 10% outside -> RR = 2.
/// let rr = RelativeRisk::from_table(
///     RiskTable { cases_in: 200, total_in: 1000, cases_out: 1000, total_out: 10000 },
///     0.05,
/// ).unwrap();
/// assert!((rr.rr - 2.0).abs() < 1e-12);
/// assert!(rr.is_excess()); // the paper's highlighting rule
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelativeRisk {
    /// Point estimate `(cases_in/total_in) / (cases_out/total_out)`.
    pub rr: f64,
    /// Natural log of the point estimate.
    pub log_rr: f64,
    /// Standard error of `log(RR)` (Katz).
    pub se_log_rr: f64,
    /// Lower limit of the CI on the RR scale.
    pub ci_low: f64,
    /// Upper limit of the CI on the RR scale.
    pub ci_high: f64,
    /// Significance level the interval was built at.
    pub alpha: f64,
}

impl RelativeRisk {
    /// Computes the relative risk with a `(1 − alpha)` two-sided CI.
    ///
    /// Errors when any margin needed by the estimator is zero: the paper's
    /// prevalences are undefined for empty regions, and the Katz standard
    /// error needs nonzero case counts on both sides.
    pub fn from_table(table: RiskTable, alpha: f64) -> Result<Self> {
        let RiskTable {
            cases_in,
            total_in,
            cases_out,
            total_out,
        } = table;
        if total_in == 0 || total_out == 0 {
            return Err(StatsError::Undefined {
                reason: "relative risk: empty population on one side".to_string(),
            });
        }
        if cases_in > total_in || cases_out > total_out {
            return Err(StatsError::InvalidParameter {
                reason: format!(
                    "cases exceed totals: {cases_in}/{total_in} inside, {cases_out}/{total_out} outside"
                ),
            });
        }
        if cases_in == 0 || cases_out == 0 {
            return Err(StatsError::Undefined {
                reason: "relative risk: zero case count; the log-RR standard error is undefined"
                    .to_string(),
            });
        }
        let z = z_critical(alpha)?;
        let p_in = cases_in as f64 / total_in as f64;
        let p_out = cases_out as f64 / total_out as f64;
        let rr = p_in / p_out;
        let log_rr = rr.ln();
        // Katz: SE(ln RR) = sqrt(1/a − 1/n1 + 1/c − 1/n2).
        let se_log_rr = (1.0 / cases_in as f64 - 1.0 / total_in as f64 + 1.0 / cases_out as f64
            - 1.0 / total_out as f64)
            .sqrt();
        let ci_low = (log_rr - z * se_log_rr).exp();
        let ci_high = (log_rr + z * se_log_rr).exp();
        Ok(Self {
            rr,
            log_rr,
            se_log_rr,
            ci_low,
            ci_high,
            alpha,
        })
    }

    /// The paper's highlighting rule: the organ significantly exceeds its
    /// national expectation when `log(RR) − z·σ > 0`, i.e. `ci_low > 1`.
    pub fn is_excess(&self) -> bool {
        self.ci_low > 1.0
    }

    /// Symmetric deficit rule: significantly *below* national expectation
    /// when `ci_high < 1` (used by the state-similarity discussion, where
    /// states can also resemble each other in what they under-mention).
    pub fn is_deficit(&self) -> bool {
        self.ci_high < 1.0
    }
}

/// Convenience: computes the RR of `cases_in/total_in` against the
/// complement derived from grand totals (`grand_cases`, `grand_total`),
/// i.e. "this state versus the rest of the USA".
pub fn relative_risk_vs_rest(
    cases_in: u64,
    total_in: u64,
    grand_cases: u64,
    grand_total: u64,
    alpha: f64,
) -> Result<RelativeRisk> {
    if grand_cases < cases_in || grand_total < total_in {
        return Err(StatsError::InvalidParameter {
            reason: "grand totals smaller than in-region counts".to_string(),
        });
    }
    RelativeRisk::from_table(
        RiskTable {
            cases_in,
            total_in,
            cases_out: grand_cases - cases_in,
            total_out: grand_total - total_in,
        },
        alpha,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rr_point_estimate() {
        // 20% prevalence inside vs 10% outside -> RR = 2.
        let rr = RelativeRisk::from_table(
            RiskTable {
                cases_in: 200,
                total_in: 1000,
                cases_out: 1000,
                total_out: 10000,
            },
            0.05,
        )
        .unwrap();
        assert!((rr.rr - 2.0).abs() < 1e-12);
        assert!((rr.log_rr - 2.0f64.ln()).abs() < 1e-12);
        assert!(rr.ci_low < 2.0 && 2.0 < rr.ci_high);
    }

    #[test]
    fn katz_se_formula() {
        let rr = RelativeRisk::from_table(
            RiskTable {
                cases_in: 27,
                total_in: 100,
                cases_out: 77,
                total_out: 1000,
            },
            0.05,
        )
        .unwrap();
        let expected_se = (1.0 / 27.0 - 1.0 / 100.0 + 1.0 / 77.0 - 1.0 / 1000.0f64).sqrt();
        assert!((rr.se_log_rr - expected_se).abs() < 1e-12);
    }

    #[test]
    fn excess_detection_matches_paper_rule() {
        // Strong, well-powered excess.
        let strong = RelativeRisk::from_table(
            RiskTable {
                cases_in: 500,
                total_in: 1000,
                cases_out: 1000,
                total_out: 10000,
            },
            0.05,
        )
        .unwrap();
        assert!(strong.is_excess());
        assert!(!strong.is_deficit());
        // Elevated point estimate but tiny sample -> not significant.
        let weak = RelativeRisk::from_table(
            RiskTable {
                cases_in: 2,
                total_in: 10,
                cases_out: 15,
                total_out: 100,
            },
            0.05,
        )
        .unwrap();
        assert!(weak.rr > 1.0);
        assert!(!weak.is_excess());
    }

    #[test]
    fn deficit_detection() {
        let deficit = RelativeRisk::from_table(
            RiskTable {
                cases_in: 50,
                total_in: 1000,
                cases_out: 2000,
                total_out: 10000,
            },
            0.05,
        )
        .unwrap();
        assert!(deficit.rr < 1.0);
        assert!(deficit.is_deficit());
        assert!(!deficit.is_excess());
    }

    #[test]
    fn rejects_degenerate_tables() {
        let base = RiskTable {
            cases_in: 1,
            total_in: 10,
            cases_out: 1,
            total_out: 10,
        };
        assert!(RelativeRisk::from_table(
            RiskTable {
                total_in: 0,
                ..base
            },
            0.05
        )
        .is_err());
        assert!(RelativeRisk::from_table(
            RiskTable {
                total_out: 0,
                ..base
            },
            0.05
        )
        .is_err());
        assert!(RelativeRisk::from_table(
            RiskTable {
                cases_in: 0,
                ..base
            },
            0.05
        )
        .is_err());
        assert!(RelativeRisk::from_table(
            RiskTable {
                cases_out: 0,
                ..base
            },
            0.05
        )
        .is_err());
        assert!(RelativeRisk::from_table(
            RiskTable {
                cases_in: 20,
                total_in: 10,
                ..base
            },
            0.05
        )
        .is_err());
    }

    #[test]
    fn vs_rest_subtracts_correctly() {
        let direct = RelativeRisk::from_table(
            RiskTable {
                cases_in: 30,
                total_in: 100,
                cases_out: 170,
                total_out: 900,
            },
            0.05,
        )
        .unwrap();
        let derived = relative_risk_vs_rest(30, 100, 200, 1000, 0.05).unwrap();
        assert!((direct.rr - derived.rr).abs() < 1e-12);
        assert!(relative_risk_vs_rest(30, 100, 20, 1000, 0.05).is_err());
        assert!(relative_risk_vs_rest(30, 100, 200, 50, 0.05).is_err());
    }

    #[test]
    fn rr_of_identical_prevalence_is_one() {
        let rr = RelativeRisk::from_table(
            RiskTable {
                cases_in: 10,
                total_in: 100,
                cases_out: 100,
                total_out: 1000,
            },
            0.05,
        )
        .unwrap();
        assert!((rr.rr - 1.0).abs() < 1e-12);
        assert!(!rr.is_excess());
        assert!(!rr.is_deficit());
    }

    #[test]
    fn tighter_alpha_widens_interval() {
        let t = RiskTable {
            cases_in: 60,
            total_in: 300,
            cases_out: 300,
            total_out: 3000,
        };
        let a05 = RelativeRisk::from_table(t, 0.05).unwrap();
        let a01 = RelativeRisk::from_table(t, 0.01).unwrap();
        assert!(a01.ci_low < a05.ci_low);
        assert!(a01.ci_high > a05.ci_high);
    }
}
