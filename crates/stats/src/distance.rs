//! Distances and divergences between vectors and discrete probability
//! distributions.
//!
//! The paper clusters states by the *Bhattacharyya distance* between their
//! organ-attention distributions (rows of `K`), arguing it is better
//! suited to discrete probability distributions than Euclidean distance
//! (Fig. 6, citing Kailath 1967). The companion metrics here support the
//! ablation bench that re-runs that clustering under Euclidean/cosine
//! affinities.

use crate::{Result, StatsError};

/// Bhattacharyya coefficient `BC(p, q) = Σ √(pᵢ·qᵢ)` of two nonnegative
/// vectors. For probability distributions `BC ∈ [0, 1]`.
pub fn bhattacharyya_coefficient(p: &[f64], q: &[f64]) -> Result<f64> {
    check(p, q, "bhattacharyya")?;
    let mut bc = 0.0;
    for (&a, &b) in p.iter().zip(q) {
        if a < 0.0 || b < 0.0 {
            return Err(StatsError::InvalidParameter {
                reason: "bhattacharyya requires nonnegative entries".to_string(),
            });
        }
        bc += (a * b).sqrt();
    }
    Ok(bc)
}

/// Bhattacharyya distance `D_B = −ln BC(p, q)`.
///
/// Returns `+∞` for distributions with disjoint support (`BC = 0`); this
/// matches the definition and keeps the clustering well-behaved (disjoint
/// states merge last). The coefficient is clamped to 1 to absorb
/// floating-point drift so identical distributions get exactly 0.
pub fn bhattacharyya(p: &[f64], q: &[f64]) -> Result<f64> {
    let bc = bhattacharyya_coefficient(p, q)?.min(1.0);
    if bc == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(-bc.ln())
}

/// Hellinger distance `H = sqrt(1 − BC)`, a bounded metric cousin of
/// Bhattacharyya.
pub fn hellinger(p: &[f64], q: &[f64]) -> Result<f64> {
    let bc = bhattacharyya_coefficient(p, q)?.min(1.0);
    Ok((1.0 - bc).sqrt())
}

/// Euclidean (L2) distance.
pub fn euclidean(p: &[f64], q: &[f64]) -> Result<f64> {
    check(p, q, "euclidean")?;
    Ok(p.iter()
        .zip(q)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt())
}

/// Manhattan (L1) distance; twice the total-variation distance for
/// probability vectors.
pub fn manhattan(p: &[f64], q: &[f64]) -> Result<f64> {
    check(p, q, "manhattan")?;
    Ok(p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum())
}

/// Cosine distance `1 − cos(p, q)`. Errors for zero vectors.
pub fn cosine(p: &[f64], q: &[f64]) -> Result<f64> {
    check(p, q, "cosine")?;
    let dot: f64 = p.iter().zip(q).map(|(a, b)| a * b).sum();
    let np: f64 = p.iter().map(|a| a * a).sum::<f64>().sqrt();
    let nq: f64 = q.iter().map(|a| a * a).sum::<f64>().sqrt();
    if np == 0.0 || nq == 0.0 {
        return Err(StatsError::Undefined {
            reason: "cosine distance undefined for zero vector".to_string(),
        });
    }
    Ok((1.0 - (dot / (np * nq))).max(0.0))
}

/// Kullback–Leibler divergence `KL(p ‖ q)` in nats. Terms with `pᵢ = 0`
/// contribute zero; `pᵢ > 0` with `qᵢ = 0` yields `+∞`.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> Result<f64> {
    check(p, q, "kl_divergence")?;
    let mut kl = 0.0;
    for (&a, &b) in p.iter().zip(q) {
        if a < 0.0 || b < 0.0 {
            return Err(StatsError::InvalidParameter {
                reason: "KL requires nonnegative entries".to_string(),
            });
        }
        if a == 0.0 {
            continue;
        }
        if b == 0.0 {
            return Ok(f64::INFINITY);
        }
        kl += a * (a / b).ln();
    }
    Ok(kl)
}

/// Jensen–Shannon divergence (symmetrized, bounded KL; `≤ ln 2`).
pub fn js_divergence(p: &[f64], q: &[f64]) -> Result<f64> {
    check(p, q, "js_divergence")?;
    let m: Vec<f64> = p.iter().zip(q).map(|(a, b)| 0.5 * (a + b)).collect();
    Ok(0.5 * kl_divergence(p, &m)? + 0.5 * kl_divergence(q, &m)?)
}

fn check(p: &[f64], q: &[f64], what: &'static str) -> Result<()> {
    if p.len() != q.len() {
        return Err(StatsError::LengthMismatch {
            left: p.len(),
            right: q.len(),
            what,
        });
    }
    if p.is_empty() {
        return Err(StatsError::EmptyInput { what });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn bhattacharyya_identical_is_zero() {
        let p = [0.25, 0.25, 0.5];
        assert!(bhattacharyya(&p, &p).unwrap().abs() < TOL);
        assert!((bhattacharyya_coefficient(&p, &p).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn bhattacharyya_disjoint_is_infinite() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert_eq!(bhattacharyya(&p, &q).unwrap(), f64::INFINITY);
        assert!((hellinger(&p, &q).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn bhattacharyya_known_value() {
        // BC([.5,.5],[.9,.1]) = sqrt(.45) + sqrt(.05).
        let bc = bhattacharyya_coefficient(&[0.5, 0.5], &[0.9, 0.1]).unwrap();
        let expected = 0.45f64.sqrt() + 0.05f64.sqrt();
        assert!((bc - expected).abs() < TOL);
        assert!((bhattacharyya(&[0.5, 0.5], &[0.9, 0.1]).unwrap() + expected.ln()).abs() < TOL);
    }

    #[test]
    fn bhattacharyya_symmetry() {
        let p = [0.1, 0.2, 0.7];
        let q = [0.3, 0.3, 0.4];
        assert!((bhattacharyya(&p, &q).unwrap() - bhattacharyya(&q, &p).unwrap()).abs() < TOL);
    }

    #[test]
    fn bhattacharyya_rejects_negative() {
        assert!(bhattacharyya(&[-0.1, 1.1], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn euclidean_and_manhattan_known() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]).unwrap() - 5.0).abs() < TOL);
        assert!((manhattan(&[0.0, 0.0], &[3.0, 4.0]).unwrap() - 7.0).abs() < TOL);
    }

    #[test]
    fn cosine_known_values() {
        assert!(cosine(&[1.0, 0.0], &[2.0, 0.0]).unwrap().abs() < TOL);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0]).unwrap() - 1.0).abs() < TOL);
        assert!(cosine(&[0.0, 0.0], &[1.0, 0.0]).is_err());
    }

    #[test]
    fn kl_properties() {
        let p = [0.5, 0.5];
        let q = [0.9, 0.1];
        assert!(kl_divergence(&p, &p).unwrap().abs() < TOL);
        assert!(kl_divergence(&p, &q).unwrap() > 0.0);
        // Asymmetric.
        assert!((kl_divergence(&p, &q).unwrap() - kl_divergence(&q, &p).unwrap()).abs() > 1e-3);
        // Absolutely-continuous violation -> infinity.
        assert_eq!(
            kl_divergence(&[0.5, 0.5], &[1.0, 0.0]).unwrap(),
            f64::INFINITY
        );
        // 0 * ln(0/q) term is skipped.
        assert!(kl_divergence(&[1.0, 0.0], &[0.5, 0.5]).unwrap().is_finite());
    }

    #[test]
    fn js_is_symmetric_and_bounded() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.1, 0.1, 0.8];
        let d1 = js_divergence(&p, &q).unwrap();
        let d2 = js_divergence(&q, &p).unwrap();
        assert!((d1 - d2).abs() < TOL);
        assert!(d1 > 0.0 && d1 <= std::f64::consts::LN_2 + TOL);
        // Disjoint support hits the ln 2 bound exactly.
        let djs = js_divergence(&[1.0, 0.0], &[0.0, 1.0]).unwrap();
        assert!((djs - std::f64::consts::LN_2).abs() < TOL);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(euclidean(&[1.0], &[1.0, 2.0]).is_err());
        assert!(bhattacharyya(&[], &[]).is_err());
    }
}
