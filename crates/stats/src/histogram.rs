//! Histograms and binned counts.
//!
//! The paper's figures are histogram-shaped: users-per-organ (Fig. 2a),
//! mention-breadth counts (Fig. 2b), and the per-organ / per-state
//! attention profiles rendered as ranked log-scale bars (Figs. 3–4).

use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// A labeled count histogram (category → count), preserving insertion
/// order so render order is deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CategoricalHistogram {
    labels: Vec<String>,
    counts: Vec<u64>,
}

impl CategoricalHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a histogram from parallel label/count slices.
    pub fn from_pairs(pairs: &[(&str, u64)]) -> Self {
        Self {
            labels: pairs.iter().map(|(l, _)| l.to_string()).collect(),
            counts: pairs.iter().map(|&(_, c)| c).collect(),
        }
    }

    /// Adds `delta` to the count of `label`, creating it if missing.
    pub fn add(&mut self, label: &str, delta: u64) {
        match self.labels.iter().position(|l| l == label) {
            Some(i) => self.counts[i] += delta,
            None => {
                self.labels.push(label.to_string());
                self.counts.push(delta);
            }
        }
    }

    /// Increments the count of `label` by one.
    pub fn increment(&mut self, label: &str) {
        self.add(label, 1);
    }

    /// Count for `label`, zero when absent.
    pub fn count(&self, label: &str) -> u64 {
        self.labels
            .iter()
            .position(|l| l == label)
            .map_or(0, |i| self.counts[i])
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no category has been recorded.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Total count across categories.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates `(label, count)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.labels
            .iter()
            .map(String::as_str)
            .zip(self.counts.iter().copied())
    }

    /// Returns `(label, count)` pairs sorted by descending count (ties by
    /// insertion order) — the "ranked bars" view of the paper's plots.
    pub fn ranked(&self) -> Vec<(&str, u64)> {
        let mut pairs: Vec<(&str, u64)> = self.iter().collect();
        pairs.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        pairs
    }

    /// Normalizes to a probability vector in insertion order. Errors for
    /// an empty or all-zero histogram.
    pub fn to_distribution(&self) -> Result<Vec<f64>> {
        let total = self.total();
        if total == 0 {
            return Err(StatsError::Undefined {
                reason: "cannot normalize an empty histogram".to_string(),
            });
        }
        Ok(self
            .counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect())
    }
}

/// A fixed-width numeric histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniformHistogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Observations below `lo` or at/above `hi`.
    out_of_range: u64,
}

impl UniformHistogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) || bins == 0 {
            return Err(StatsError::InvalidParameter {
                reason: format!("invalid histogram range [{lo}, {hi}) with {bins} bins"),
            });
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            out_of_range: 0,
        })
    }

    /// Records an observation.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() || x < self.lo || x >= self.hi {
            self.out_of_range += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = (((x - self.lo) / width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations that fell outside `[lo, hi)`.
    pub fn out_of_range(&self) -> u64 {
        self.out_of_range
    }

    /// `(bin_center, count)` pairs.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * width, c))
            .collect()
    }
}

/// Log10 of a count for log-scale bar rendering; zero counts map to 0
/// height rather than −∞. (`log10(1) = 0` also maps to 0: single-count
/// bars are indistinguishable from empty at log scale, as in the paper's
/// plots.)
pub fn log_scale_height(count: u64) -> f64 {
    if count == 0 {
        0.0
    } else {
        (count as f64).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_add_and_count() {
        let mut h = CategoricalHistogram::new();
        h.increment("heart");
        h.add("heart", 2);
        h.increment("kidney");
        assert_eq!(h.count("heart"), 3);
        assert_eq!(h.count("kidney"), 1);
        assert_eq!(h.count("liver"), 0);
        assert_eq!(h.total(), 4);
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
    }

    #[test]
    fn ranked_sorts_descending_stable() {
        let h = CategoricalHistogram::from_pairs(&[("a", 2), ("b", 5), ("c", 2)]);
        let r = h.ranked();
        assert_eq!(r, vec![("b", 5), ("a", 2), ("c", 2)]);
    }

    #[test]
    fn to_distribution_normalizes() {
        let h = CategoricalHistogram::from_pairs(&[("a", 1), ("b", 3)]);
        let d = h.to_distribution().unwrap();
        assert_eq!(d, vec![0.25, 0.75]);
        assert!(CategoricalHistogram::new().to_distribution().is_err());
    }

    #[test]
    fn uniform_histogram_bins_correctly() {
        let mut h = UniformHistogram::new(0.0, 10.0, 5).unwrap();
        for &x in &[0.0, 1.9, 2.0, 9.99, -1.0, 10.0, f64::NAN] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.out_of_range(), 3);
    }

    #[test]
    fn uniform_histogram_rejects_bad_params() {
        assert!(UniformHistogram::new(1.0, 1.0, 5).is_err());
        assert!(UniformHistogram::new(2.0, 1.0, 5).is_err());
        assert!(UniformHistogram::new(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn centers_are_midpoints() {
        let h = UniformHistogram::new(0.0, 4.0, 2).unwrap();
        let centers: Vec<f64> = h.centers().iter().map(|&(c, _)| c).collect();
        assert_eq!(centers, vec![1.0, 3.0]);
    }

    #[test]
    fn log_scale_heights() {
        assert_eq!(log_scale_height(0), 0.0);
        assert_eq!(log_scale_height(1), 0.0);
        assert!((log_scale_height(1000) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let h = CategoricalHistogram::from_pairs(&[("x", 7)]);
        let json = serde_json::to_string(&h).unwrap();
        let back: CategoricalHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }
}
