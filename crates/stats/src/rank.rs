//! Ranking with tie handling.
//!
//! Spearman correlation (Fig. 2a's popularity-vs-transplants check) is
//! Pearson correlation applied to ranks; ties receive the average of the
//! ranks they span, exactly as `scipy.stats.rankdata(method="average")`.

/// Assigns 1-based average ranks to `data`.
///
/// Tied values all receive the mean of the positions they occupy. `NaN`
/// values are ranked last (after every finite value) in input order, which
/// keeps the function total; callers that care should filter `NaN` first.
pub fn average_ranks(data: &[f64]) -> Vec<f64> {
    let n = data.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        data[a]
            .partial_cmp(&data[b])
            .unwrap_or_else(|| data[a].is_nan().cmp(&data[b].is_nan()))
    });

    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the run of equal values starting at sorted position i.
        let mut j = i + 1;
        while j < n && data[order[j]] == data[order[i]] {
            j += 1;
        }
        // Positions i..j (0-based) correspond to ranks i+1..=j; average them.
        let avg = (i + 1 + j) as f64 / 2.0;
        for &idx in &order[i..j] {
            ranks[idx] = avg;
        }
        i = j;
    }
    ranks
}

/// Assigns 1-based *dense* ranks: ties share a rank and the next distinct
/// value gets the next integer. Useful for the ranked-bin presentation of
/// Fig. 3 ("values are ranked based on mentions").
pub fn dense_ranks(data: &[f64]) -> Vec<usize> {
    let n = data.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| data[a].partial_cmp(&data[b]).expect("NaN in dense_ranks"));

    let mut ranks = vec![0usize; n];
    let mut rank = 0;
    let mut prev: Option<f64> = None;
    for &idx in &order {
        if prev != Some(data[idx]) {
            rank += 1;
            prev = Some(data[idx]);
        }
        ranks[idx] = rank;
    }
    ranks
}

/// Returns the permutation that sorts `data` descending (largest first);
/// ties keep input order (stable). This is the "ranked bars" ordering used
/// when rendering the paper's histograms.
pub fn descending_order(data: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..data.len()).collect();
    order.sort_by(|&a, &b| {
        data[b]
            .partial_cmp(&data[a])
            .expect("NaN in descending_order")
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ranks_without_ties() {
        assert_eq!(average_ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ties_get_average_rank() {
        // 10 appears at ranks 1 and 2 -> both 1.5.
        assert_eq!(average_ranks(&[10.0, 10.0, 20.0]), vec![1.5, 1.5, 3.0]);
        // All equal -> all (n+1)/2.
        assert_eq!(average_ranks(&[5.0, 5.0, 5.0, 5.0]), vec![2.5; 4]);
    }

    #[test]
    fn empty_and_single() {
        assert!(average_ranks(&[]).is_empty());
        assert_eq!(average_ranks(&[42.0]), vec![1.0]);
    }

    #[test]
    fn nan_ranked_last() {
        let r = average_ranks(&[f64::NAN, 1.0, 2.0]);
        assert_eq!(r[1], 1.0);
        assert_eq!(r[2], 2.0);
        assert_eq!(r[0], 3.0);
    }

    #[test]
    fn dense_ranks_collapse_ties() {
        assert_eq!(dense_ranks(&[10.0, 10.0, 20.0, 30.0]), vec![1, 1, 2, 3]);
        assert_eq!(dense_ranks(&[3.0, 1.0, 2.0]), vec![3, 1, 2]);
    }

    #[test]
    fn descending_order_is_stable() {
        let order = descending_order(&[1.0, 3.0, 3.0, 2.0]);
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn rank_sum_invariant() {
        // Sum of average ranks is always n(n+1)/2 regardless of ties.
        let data = [4.0, 4.0, 4.0, 1.0, 9.0, 9.0, 2.0];
        let n = data.len() as f64;
        let sum: f64 = average_ranks(&data).iter().sum();
        assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-10);
    }
}
