//! Pearson and Spearman correlation with significance tests.
//!
//! The paper validates its Twitter popularity signal against the OPTN 2012
//! transplant registry with a Spearman correlation (`r = .84, p < .05`,
//! Fig. 2a). Spearman is computed as Pearson over average ranks (correct
//! under ties), and the p-value uses the exact-t approximation
//! `t = r · sqrt((n−2)/(1−r²))` with `n−2` degrees of freedom.

use crate::descriptive::mean;
use crate::distribution::t_two_sided_p;
use crate::rank::average_ranks;
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// A correlation estimate together with its two-sided significance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Correlation {
    /// The correlation coefficient in `[-1, 1]`.
    pub r: f64,
    /// Two-sided p-value under the t approximation.
    pub p_value: f64,
    /// Number of paired observations.
    pub n: usize,
}

impl Correlation {
    /// True when `p_value < alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Pearson product-moment correlation between paired samples.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<Correlation> {
    check_pairs(x, y, "pearson")?;
    let n = x.len();
    let mx = mean(x)?;
    let my = mean(y)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatsError::Undefined {
            reason: "correlation undefined for a constant sample".to_string(),
        });
    }
    // Clamp against floating point drift so r stays in [-1, 1].
    let r = (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0);
    let p_value = correlation_p(r, n)?;
    Ok(Correlation { r, p_value, n })
}

/// Spearman rank correlation between paired samples (tie-aware).
pub fn spearman(x: &[f64], y: &[f64]) -> Result<Correlation> {
    check_pairs(x, y, "spearman")?;
    let rx = average_ranks(x);
    let ry = average_ranks(y);
    pearson(&rx, &ry)
}

/// Two-sided p-value for a correlation `r` over `n` pairs using the
/// t transform. `|r| = 1` maps to `p = 0`.
fn correlation_p(r: f64, n: usize) -> Result<f64> {
    debug_assert!(n >= 3);
    let df = (n - 2) as f64;
    let denom = 1.0 - r * r;
    if denom <= 0.0 {
        return Ok(0.0);
    }
    let t = r * (df / denom).sqrt();
    t_two_sided_p(t, df)
}

fn check_pairs(x: &[f64], y: &[f64], what: &'static str) -> Result<()> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
            what,
        });
    }
    if x.len() < 3 {
        return Err(StatsError::InsufficientData {
            needed: 3,
            got: x.len(),
            what,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_linear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 4.0, 6.0, 8.0, 10.0];
        let c = pearson(&x, &y).unwrap();
        assert!((c.r - 1.0).abs() < 1e-12);
        assert!(c.p_value < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg).unwrap().r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_known_value() {
        // Anscombe's first quartet: r ≈ 0.81642.
        let x = [10.0, 8.0, 13.0, 9.0, 11.0, 14.0, 6.0, 4.0, 12.0, 7.0, 5.0];
        let y = [
            8.04, 6.95, 7.58, 8.81, 8.33, 9.96, 7.24, 4.26, 10.84, 4.82, 5.68,
        ];
        let c = pearson(&x, &y).unwrap();
        assert!((c.r - 0.81642).abs() < 1e-4, "r = {}", c.r);
        // scipy reports p ≈ 0.00217.
        assert!((c.p_value - 0.00217).abs() < 2e-4, "p = {}", c.p_value);
        assert!(c.significant_at(0.05));
        assert!(!c.significant_at(0.001));
    }

    #[test]
    fn pearson_rejects_bad_input() {
        assert!(matches!(
            pearson(&[1.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            pearson(&[1.0, 2.0], &[1.0, 2.0]),
            Err(StatsError::InsufficientData { .. })
        ));
        assert!(matches!(
            pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::Undefined { .. })
        ));
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        // y = x³ is monotone, so Spearman must be exactly 1 while Pearson
        // is below 1.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y: Vec<f64> = x.iter().map(|v| f64::powi(*v, 3)).collect();
        let s = spearman(&x, &y).unwrap();
        assert!((s.r - 1.0).abs() < 1e-12);
        let p = pearson(&x, &y).unwrap();
        assert!(p.r < 1.0);
    }

    #[test]
    fn spearman_with_ties_matches_scipy() {
        // scipy.stats.spearmanr([1,2,2,4], [1,3,2,4]) -> 0.948683…
        // (ranks [1, 2.5, 2.5, 4] vs [1, 3, 2, 4]).
        let x = [1.0, 2.0, 2.0, 4.0];
        let y = [1.0, 3.0, 2.0, 4.0];
        let s = spearman(&x, &y).unwrap();
        assert!((s.r - 0.9486832980505138).abs() < 1e-12, "r = {}", s.r);
    }

    #[test]
    fn spearman_reversed_is_minus_one() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [9.0, 7.0, 5.0, 1.0];
        assert!((spearman(&x, &y).unwrap().r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_is_symmetric() {
        let x = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let y = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0];
        let a = pearson(&x, &y).unwrap();
        let b = pearson(&y, &x).unwrap();
        assert!((a.r - b.r).abs() < 1e-14);
        assert!((a.p_value - b.p_value).abs() < 1e-12);
    }
}
