//! Descriptive statistics: central tendency, dispersion, and quantiles.

use crate::{Result, StatsError};

/// Arithmetic mean.
pub fn mean(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput { what: "mean" });
    }
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Unbiased (n−1) sample variance.
pub fn sample_variance(data: &[f64]) -> Result<f64> {
    if data.len() < 2 {
        return Err(StatsError::InsufficientData {
            needed: 2,
            got: data.len(),
            what: "sample_variance",
        });
    }
    let m = mean(data)?;
    let ss: f64 = data.iter().map(|x| (x - m) * (x - m)).sum();
    Ok(ss / (data.len() - 1) as f64)
}

/// Population (n) variance.
pub fn population_variance(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput {
            what: "population_variance",
        });
    }
    let m = mean(data)?;
    let ss: f64 = data.iter().map(|x| (x - m) * (x - m)).sum();
    Ok(ss / data.len() as f64)
}

/// Unbiased sample standard deviation.
pub fn sample_std(data: &[f64]) -> Result<f64> {
    sample_variance(data).map(f64::sqrt)
}

/// Geometric mean of a strictly positive sample — the natural average
/// for multiplicative quantities such as relative risks (`log RR` is the
/// paper's approximately-normal scale).
pub fn geometric_mean(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput {
            what: "geometric_mean",
        });
    }
    if data.iter().any(|&x| x <= 0.0 || !x.is_finite()) {
        return Err(StatsError::InvalidParameter {
            reason: "geometric mean requires strictly positive finite values".to_string(),
        });
    }
    let log_mean = data.iter().map(|x| x.ln()).sum::<f64>() / data.len() as f64;
    Ok(log_mean.exp())
}

/// Median (average of the two central order statistics for even n).
pub fn median(data: &[f64]) -> Result<f64> {
    quantile(data, 0.5)
}

/// Linear-interpolation quantile (type-7, the numpy/R default).
///
/// `q` must lie in `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput { what: "quantile" });
    }
    if !(0.0..=1.0).contains(&q) || q.is_nan() {
        return Err(StatsError::InvalidParameter {
            reason: format!("quantile q={q} outside [0, 1]"),
        });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        return Ok(sorted[lo]);
    }
    let frac = h - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Minimum of a nonempty sample.
pub fn min(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput { what: "min" });
    }
    Ok(data.iter().cloned().fold(f64::INFINITY, f64::min))
}

/// Maximum of a nonempty sample.
pub fn max(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput { what: "max" });
    }
    Ok(data.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
}

/// Streaming (Welford) accumulator for mean and variance — handy for the
/// simulator, which produces hundreds of thousands of observations.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation into the accumulator.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean, or `None` before any observation.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Running unbiased sample variance, or `None` before two observations.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-10;

    #[test]
    fn mean_of_known_sample() {
        assert!((mean(&[1.0, 2.0, 3.0, 4.0]).unwrap() - 2.5).abs() < TOL);
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn variances_known_sample() {
        let d = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((population_variance(&d).unwrap() - 4.0).abs() < TOL);
        assert!((sample_variance(&d).unwrap() - 32.0 / 7.0).abs() < TOL);
        assert!(sample_variance(&[1.0]).is_err());
        assert!(population_variance(&[]).is_err());
    }

    #[test]
    fn std_is_sqrt_variance() {
        let d = [1.0, 3.0, 5.0];
        assert!((sample_std(&d).unwrap() - sample_variance(&d).unwrap().sqrt()).abs() < TOL);
    }

    #[test]
    fn geometric_mean_known_values() {
        assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < TOL);
        assert!((geometric_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < TOL);
        assert!((geometric_mean(&[5.0]).unwrap() - 5.0).abs() < TOL);
        // AM-GM inequality.
        let d = [1.0, 2.0, 9.0];
        assert!(geometric_mean(&d).unwrap() <= mean(&d).unwrap());
        assert!(geometric_mean(&[]).is_err());
        assert!(geometric_mean(&[1.0, 0.0]).is_err());
        assert!(geometric_mean(&[1.0, -2.0]).is_err());
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
    }

    #[test]
    fn quantile_interpolates() {
        let d = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&d, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&d, 1.0).unwrap(), 4.0);
        assert!((quantile(&d, 0.25).unwrap() - 1.75).abs() < TOL);
        assert!(quantile(&d, -0.1).is_err());
        assert!(quantile(&d, 1.1).is_err());
        assert!(quantile(&d, f64::NAN).is_err());
    }

    #[test]
    fn min_max_known() {
        let d = [3.0, -1.0, 7.0];
        assert_eq!(min(&d).unwrap(), -1.0);
        assert_eq!(max(&d).unwrap(), 7.0);
        assert!(min(&[]).is_err());
        assert!(max(&[]).is_err());
    }

    #[test]
    fn running_stats_matches_batch() {
        let d = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        for &x in &d {
            rs.push(x);
        }
        assert_eq!(rs.count(), 8);
        assert!((rs.mean().unwrap() - mean(&d).unwrap()).abs() < TOL);
        assert!((rs.sample_variance().unwrap() - sample_variance(&d).unwrap()).abs() < TOL);
    }

    #[test]
    fn running_stats_merge_matches_single_pass() {
        let d1 = [1.0, 2.0, 3.0];
        let d2 = [10.0, 20.0, 30.0, 40.0];
        let mut a = RunningStats::new();
        d1.iter().for_each(|&x| a.push(x));
        let mut b = RunningStats::new();
        d2.iter().for_each(|&x| b.push(x));
        a.merge(&b);

        let all: Vec<f64> = d1.iter().chain(&d2).cloned().collect();
        assert!((a.mean().unwrap() - mean(&all).unwrap()).abs() < TOL);
        assert!((a.sample_variance().unwrap() - sample_variance(&all).unwrap()).abs() < TOL);
    }

    #[test]
    fn running_stats_merge_edge_cases() {
        let mut empty = RunningStats::new();
        let mut one = RunningStats::new();
        one.push(5.0);
        empty.merge(&one);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), Some(5.0));
        assert_eq!(empty.sample_variance(), None);
        one.merge(&RunningStats::new());
        assert_eq!(one.count(), 1);
    }
}
