use std::fmt;

/// Errors produced by statistical routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The input sample is empty but the statistic requires data.
    EmptyInput {
        /// Statistic that was requested.
        what: &'static str,
    },
    /// Two paired samples have different lengths.
    LengthMismatch {
        /// Length of the first sample.
        left: usize,
        /// Length of the second sample.
        right: usize,
        /// Statistic that was requested.
        what: &'static str,
    },
    /// Not enough observations for the statistic (e.g. variance of one
    /// point, correlation of fewer than three pairs).
    InsufficientData {
        /// Number of observations required.
        needed: usize,
        /// Number of observations given.
        got: usize,
        /// Statistic that was requested.
        what: &'static str,
    },
    /// The statistic is undefined for the given input (e.g. correlation of
    /// a constant sequence, relative risk with a zero denominator).
    Undefined {
        /// Human-readable description.
        reason: String,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput { what } => write!(f, "{what}: empty input"),
            StatsError::LengthMismatch { left, right, what } => write!(
                f,
                "{what}: paired samples differ in length ({left} vs {right})"
            ),
            StatsError::InsufficientData { needed, got, what } => {
                write!(f, "{what}: needs at least {needed} observations, got {got}")
            }
            StatsError::Undefined { reason } => write!(f, "statistic undefined: {reason}"),
            StatsError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StatsError::LengthMismatch {
            left: 3,
            right: 5,
            what: "pearson",
        };
        assert!(e.to_string().contains("pearson"));
        assert!(e.to_string().contains("3 vs 5"));
        assert!(StatsError::EmptyInput { what: "mean" }
            .to_string()
            .contains("mean"));
    }
}
