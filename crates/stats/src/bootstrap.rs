//! Percentile-bootstrap confidence intervals.
//!
//! The paper reports point estimates (Spearman r, organ shares) without
//! uncertainty. Resampling gives the library a way to attach intervals
//! to any statistic of a sample — useful when a characterization is
//! computed on a small state's users and the reader needs to know how
//! much to trust it.

use crate::{Result, StatsError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A bootstrap estimate with its percentile confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapEstimate {
    /// The statistic on the original sample.
    pub point: f64,
    /// Lower percentile bound.
    pub ci_low: f64,
    /// Upper percentile bound.
    pub ci_high: f64,
    /// Confidence level used (e.g. 0.95).
    pub confidence: f64,
    /// Number of resamples drawn.
    pub resamples: usize,
}

/// Bootstrap configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapConfig {
    /// Number of resamples (≥ 100 recommended).
    pub resamples: usize,
    /// Confidence level in `(0, 1)`.
    pub confidence: f64,
    /// RNG seed — estimates are deterministic given the seed.
    pub seed: u64,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            resamples: 1_000,
            confidence: 0.95,
            seed: 0,
        }
    }
}

/// Percentile bootstrap of an arbitrary statistic over a sample.
pub fn bootstrap_ci(
    data: &[f64],
    config: BootstrapConfig,
    statistic: impl Fn(&[f64]) -> f64,
) -> Result<BootstrapEstimate> {
    validate(data.len(), &config)?;
    let point = statistic(data);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut stats = Vec::with_capacity(config.resamples);
    let mut resample = vec![0.0; data.len()];
    for _ in 0..config.resamples {
        for slot in resample.iter_mut() {
            *slot = data[rng.gen_range(0..data.len())];
        }
        stats.push(statistic(&resample));
    }
    let (ci_low, ci_high) = percentile_interval(&mut stats, config.confidence);
    Ok(BootstrapEstimate {
        point,
        ci_low,
        ci_high,
        confidence: config.confidence,
        resamples: config.resamples,
    })
}

/// Paired bootstrap: resamples index pairs, for statistics over two
/// aligned samples (e.g. a correlation coefficient).
pub fn bootstrap_ci_paired(
    x: &[f64],
    y: &[f64],
    config: BootstrapConfig,
    statistic: impl Fn(&[f64], &[f64]) -> f64,
) -> Result<BootstrapEstimate> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
            what: "bootstrap_ci_paired",
        });
    }
    validate(x.len(), &config)?;
    let point = statistic(x, y);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut stats = Vec::with_capacity(config.resamples);
    let mut rx = vec![0.0; x.len()];
    let mut ry = vec![0.0; y.len()];
    for _ in 0..config.resamples {
        for i in 0..x.len() {
            let j = rng.gen_range(0..x.len());
            rx[i] = x[j];
            ry[i] = y[j];
        }
        stats.push(statistic(&rx, &ry));
    }
    let (ci_low, ci_high) = percentile_interval(&mut stats, config.confidence);
    Ok(BootstrapEstimate {
        point,
        ci_low,
        ci_high,
        confidence: config.confidence,
        resamples: config.resamples,
    })
}

fn validate(n: usize, config: &BootstrapConfig) -> Result<()> {
    if n == 0 {
        return Err(StatsError::EmptyInput { what: "bootstrap" });
    }
    if config.resamples < 10 {
        return Err(StatsError::InvalidParameter {
            reason: format!("too few resamples: {}", config.resamples),
        });
    }
    if !(0.0..1.0).contains(&config.confidence) || config.confidence == 0.0 {
        return Err(StatsError::InvalidParameter {
            reason: format!("confidence {} outside (0, 1)", config.confidence),
        });
    }
    Ok(())
}

/// Percentile interval over bootstrap statistics (NaN-tolerant: NaNs
/// sort last and are excluded from the interval).
fn percentile_interval(stats: &mut [f64], confidence: f64) -> (f64, f64) {
    stats.sort_by(|a, b| {
        a.partial_cmp(b)
            .unwrap_or_else(|| a.is_nan().cmp(&b.is_nan()))
    });
    let finite = stats.iter().filter(|v| v.is_finite()).count();
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((finite as f64) * alpha).floor() as usize;
    let hi_idx = (((finite as f64) * (1.0 - alpha)).ceil() as usize).saturating_sub(1);
    (
        stats[lo_idx.min(finite.saturating_sub(1))],
        stats[hi_idx.min(finite.saturating_sub(1))],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::spearman;
    use crate::descriptive::mean;

    fn sample(n: usize) -> Vec<f64> {
        // Deterministic ∪-ish sample with mean 10.
        (0..n)
            .map(|i| 10.0 + ((i * 37) % 21) as f64 - 10.0)
            .collect()
    }

    #[test]
    fn ci_brackets_point_estimate() {
        let data = sample(200);
        let est = bootstrap_ci(&data, BootstrapConfig::default(), |d| mean(d).unwrap()).unwrap();
        assert!(est.ci_low <= est.point && est.point <= est.ci_high);
        assert!((est.point - mean(&data).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn ci_width_shrinks_with_sample_size() {
        let small = bootstrap_ci(&sample(30), BootstrapConfig::default(), |d| {
            mean(d).unwrap()
        })
        .unwrap();
        let large = bootstrap_ci(&sample(3000), BootstrapConfig::default(), |d| {
            mean(d).unwrap()
        })
        .unwrap();
        assert!(
            large.ci_high - large.ci_low < small.ci_high - small.ci_low,
            "large [{}, {}] vs small [{}, {}]",
            large.ci_low,
            large.ci_high,
            small.ci_low,
            small.ci_high
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let data = sample(100);
        let a = bootstrap_ci(&data, BootstrapConfig::default(), |d| mean(d).unwrap()).unwrap();
        let b = bootstrap_ci(&data, BootstrapConfig::default(), |d| mean(d).unwrap()).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_ci(
            &data,
            BootstrapConfig {
                seed: 9,
                ..Default::default()
            },
            |d| mean(d).unwrap(),
        )
        .unwrap();
        assert_ne!(a.ci_low, c.ci_low);
    }

    #[test]
    fn paired_bootstrap_for_spearman() {
        // Strongly correlated pairs: the CI should exclude zero.
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 2.0 + ((v * 13.0) % 7.0)).collect();
        let est = bootstrap_ci_paired(&x, &y, BootstrapConfig::default(), |a, b| {
            spearman(a, b).map(|c| c.r).unwrap_or(f64::NAN)
        })
        .unwrap();
        assert!(est.point > 0.9);
        assert!(est.ci_low > 0.5, "{est:?}");
        assert!(est.ci_high <= 1.0 + 1e-12);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(bootstrap_ci(&[], BootstrapConfig::default(), |d| d.len() as f64).is_err());
        let bad = BootstrapConfig {
            resamples: 5,
            ..Default::default()
        };
        assert!(bootstrap_ci(&[1.0], bad, |d| d.len() as f64).is_err());
        let bad = BootstrapConfig {
            confidence: 1.5,
            ..Default::default()
        };
        assert!(bootstrap_ci(&[1.0], bad, |d| d.len() as f64).is_err());
        assert!(
            bootstrap_ci_paired(&[1.0], &[1.0, 2.0], BootstrapConfig::default(), |_, _| 0.0)
                .is_err()
        );
    }

    #[test]
    fn single_point_sample_degenerates_gracefully() {
        let est = bootstrap_ci(&[42.0], BootstrapConfig::default(), |d| mean(d).unwrap()).unwrap();
        assert_eq!(est.point, 42.0);
        assert_eq!(est.ci_low, 42.0);
        assert_eq!(est.ci_high, 42.0);
    }
}
