//! Contingency-table tests: chi-square independence and effect size.
//!
//! Before interpreting per-cell anomalies (the paper's per-state
//! relative risks, Fig. 5), it is good practice to establish that the
//! organ × state table deviates from independence *globally* — otherwise
//! the per-cell highlights are guaranteed multiple-testing noise. This
//! module provides Pearson's chi-square test with the exact chi-square
//! tail probability, plus Cramér's V as the effect size.

use crate::distribution::chi_square_sf;
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// Result of a chi-square independence test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChiSquareTest {
    /// The chi-square statistic.
    pub statistic: f64,
    /// Degrees of freedom `(rows − 1)(cols − 1)`.
    pub df: f64,
    /// Tail probability `P(X² ≥ statistic)`.
    pub p_value: f64,
    /// Cramér's V effect size in `[0, 1]`.
    pub cramers_v: f64,
    /// Total observations.
    pub n: u64,
}

impl ChiSquareTest {
    /// True when `p_value < alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Pearson chi-square test of independence over an `r × c` count table
/// (rows must be equal length; all-zero rows/columns are rejected since
/// their expected counts are undefined).
pub fn chi_square_independence(table: &[Vec<u64>]) -> Result<ChiSquareTest> {
    let r = table.len();
    if r < 2 {
        return Err(StatsError::InsufficientData {
            needed: 2,
            got: r,
            what: "chi_square rows",
        });
    }
    let c = table[0].len();
    if c < 2 {
        return Err(StatsError::InsufficientData {
            needed: 2,
            got: c,
            what: "chi_square columns",
        });
    }
    for row in table {
        if row.len() != c {
            return Err(StatsError::LengthMismatch {
                left: c,
                right: row.len(),
                what: "chi_square row",
            });
        }
    }
    let row_sums: Vec<u64> = table.iter().map(|row| row.iter().sum()).collect();
    let col_sums: Vec<u64> = (0..c)
        .map(|j| table.iter().map(|row| row[j]).sum())
        .collect();
    let n: u64 = row_sums.iter().sum();
    if n == 0 {
        return Err(StatsError::EmptyInput { what: "chi_square" });
    }
    if row_sums.contains(&0) || col_sums.contains(&0) {
        return Err(StatsError::Undefined {
            reason: "chi-square undefined with an all-zero row or column".to_string(),
        });
    }

    let mut statistic = 0.0;
    for (i, row) in table.iter().enumerate() {
        for (j, &obs) in row.iter().enumerate() {
            let expected = row_sums[i] as f64 * col_sums[j] as f64 / n as f64;
            let d = obs as f64 - expected;
            statistic += d * d / expected;
        }
    }
    let df = ((r - 1) * (c - 1)) as f64;
    let p_value = chi_square_sf(statistic, df)?;
    let k = (r.min(c) - 1) as f64;
    let cramers_v = (statistic / (n as f64 * k)).sqrt().min(1.0);
    Ok(ChiSquareTest {
        statistic,
        df,
        p_value,
        cramers_v,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_table_not_significant() {
        // Perfect independence: rows proportional.
        let table = vec![vec![10, 20, 30], vec![20, 40, 60]];
        let t = chi_square_independence(&table).unwrap();
        assert!(t.statistic.abs() < 1e-9, "{}", t.statistic);
        assert!((t.p_value - 1.0).abs() < 1e-9);
        assert!(t.cramers_v < 1e-6);
        assert!(!t.significant_at(0.05));
        assert_eq!(t.n, 180);
        assert_eq!(t.df, 2.0);
    }

    #[test]
    fn dependent_table_significant() {
        // Strong diagonal structure.
        let table = vec![vec![50, 5], vec![5, 50]];
        let t = chi_square_independence(&table).unwrap();
        assert!(t.significant_at(0.001), "p = {}", t.p_value);
        assert!(t.cramers_v > 0.7, "V = {}", t.cramers_v);
    }

    #[test]
    fn known_textbook_value() {
        // 2x2 table [[10, 20], [30, 40]]: expected counts 12/18/28/42,
        // chi2 = 4/12 + 4/18 + 4/28 + 4/42 = 0.79365 (uncorrected),
        // df = 1, p = 2(1 − Φ(√0.79365)) ≈ 0.3729.
        let t = chi_square_independence(&[vec![10, 20], vec![30, 40]]).unwrap();
        assert!((t.statistic - 0.79365).abs() < 1e-4, "{}", t.statistic);
        assert!((t.p_value - 0.3729).abs() < 1e-3, "{}", t.p_value);
    }

    #[test]
    fn rejects_degenerate_tables() {
        assert!(chi_square_independence(&[vec![1, 2]]).is_err());
        assert!(chi_square_independence(&[vec![1], vec![2]]).is_err());
        assert!(chi_square_independence(&[vec![1, 2], vec![3]]).is_err());
        // All-zero column.
        assert!(chi_square_independence(&[vec![0, 2], vec![0, 3]]).is_err());
        // All-zero row.
        assert!(chi_square_independence(&[vec![0, 0], vec![1, 3]]).is_err());
    }

    #[test]
    fn cramers_v_bounded() {
        let t = chi_square_independence(&[vec![100, 0], vec![0, 100]]).unwrap();
        assert!((t.cramers_v - 1.0).abs() < 1e-9);
    }
}
