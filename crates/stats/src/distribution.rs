//! Probability distribution primitives: error function, standard normal
//! pdf/cdf/quantile, and Student's t tail probabilities via the
//! regularized incomplete beta function.
//!
//! These are the numerical kernels behind the paper's two significance
//! machines: the `z_{α} = 1.96` rule for relative-risk highlighting
//! (Fig. 5) and the `p < .05` Spearman test (Fig. 2a).

use crate::{Result, StatsError};

/// Error function `erf(x)`, Abramowitz & Stegun 7.1.26 rational
/// approximation refined with one Newton step against the series for small
/// `x`. Absolute error below `1.5e-7`, ample for significance testing.
pub fn erf(x: f64) -> f64 {
    // A&S 7.1.26 constants.
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    if x == 0.0 {
        return 0.0; // keep erf exactly odd at the origin so normal_cdf(0) = 0.5
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal probability density.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal quantile (inverse cdf) via Acklam's algorithm,
/// refined with one Halley step. Valid for `p ∈ (0, 1)`.
pub fn normal_quantile(p: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&p) || p == 0.0 || p == 1.0 || p.is_nan() {
        return Err(StatsError::InvalidParameter {
            reason: format!("normal_quantile requires p in (0,1), got {p}"),
        });
    }
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    Ok(x - u / (1.0 + x * u / 2.0))
}

/// Two-sided critical z value for significance level `alpha`
/// (e.g. `alpha = 0.05 → 1.959963…`, the paper's 1.96).
pub fn z_critical(alpha: f64) -> Result<f64> {
    if !(0.0..1.0).contains(&alpha) || alpha == 0.0 {
        return Err(StatsError::InvalidParameter {
            reason: format!("z_critical requires alpha in (0,1), got {alpha}"),
        });
    }
    normal_quantile(1.0 - alpha / 2.0)
}

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction (Lentz's method), following Numerical Recipes `betai`.
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || b <= 0.0 {
        return Err(StatsError::InvalidParameter {
            reason: format!("incomplete beta requires a,b > 0, got a={a}, b={b}"),
        });
    }
    if !(0.0..=1.0).contains(&x) || x.is_nan() {
        return Err(StatsError::InvalidParameter {
            reason: format!("incomplete beta requires x in [0,1], got {x}"),
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry transformation for faster convergence.
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok(front * beta_cf(a, b, x)? / a)
    } else {
        Ok(1.0 - regularized_incomplete_beta(b, a, 1.0 - x)?)
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> Result<f64> {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m_f = m as f64;
        let m2 = 2.0 * m_f;
        // Even step.
        let aa = m_f * (b - m_f) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m_f) * (qab + m_f) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return Ok(h);
        }
    }
    Err(StatsError::Undefined {
        reason: "incomplete beta continued fraction did not converge".to_string(),
    })
}

/// Regularized lower incomplete gamma function `P(a, x)` via the series
/// expansion for `x < a + 1` and the continued fraction otherwise
/// (Numerical Recipes `gammp`).
pub fn regularized_gamma_p(a: f64, x: f64) -> Result<f64> {
    if a <= 0.0 {
        return Err(StatsError::InvalidParameter {
            reason: format!("incomplete gamma requires a > 0, got {a}"),
        });
    }
    if x < 0.0 || x.is_nan() {
        return Err(StatsError::InvalidParameter {
            reason: format!("incomplete gamma requires x >= 0, got {x}"),
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        // Series representation.
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                let ln = -x + a * x.ln() - ln_gamma(a);
                return Ok((sum * ln.exp()).clamp(0.0, 1.0));
            }
        }
        Err(StatsError::Undefined {
            reason: "incomplete gamma series did not converge".to_string(),
        })
    } else {
        // Continued fraction for Q(a, x) = 1 - P(a, x) (modified Lentz).
        const FPMIN: f64 = 1e-300;
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / FPMIN;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < FPMIN {
                d = FPMIN;
            }
            c = b + an / c;
            if c.abs() < FPMIN {
                c = FPMIN;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                let ln = -x + a * x.ln() - ln_gamma(a);
                return Ok((1.0 - ln.exp() * h).clamp(0.0, 1.0));
            }
        }
        Err(StatsError::Undefined {
            reason: "incomplete gamma continued fraction did not converge".to_string(),
        })
    }
}

/// Chi-square survival function: `P(X >= x)` for `df` degrees of freedom.
pub fn chi_square_sf(x: f64, df: f64) -> Result<f64> {
    if df <= 0.0 {
        return Err(StatsError::InvalidParameter {
            reason: format!("chi-square requires df > 0, got {df}"),
        });
    }
    Ok(1.0 - regularized_gamma_p(df / 2.0, x / 2.0)?)
}

/// Two-sided p-value for a Student's t statistic with `df` degrees of
/// freedom: `P(|T| >= |t|)`.
pub fn t_two_sided_p(t: f64, df: f64) -> Result<f64> {
    if df <= 0.0 {
        return Err(StatsError::InvalidParameter {
            reason: format!("t test requires df > 0, got {df}"),
        });
    }
    if t.is_nan() {
        return Err(StatsError::InvalidParameter {
            reason: "t statistic is NaN".to_string(),
        });
    }
    if t.is_infinite() {
        return Ok(0.0);
    }
    let x = df / (df + t * t);
    regularized_incomplete_beta(df / 2.0, 0.5, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-12);
        assert!((erf(1.0) - 0.8427007929).abs() < 2e-7);
        assert!((erf(-1.0) + 0.8427007929).abs() < 2e-7);
        assert!((erf(3.0) - 0.9999779095).abs() < 2e-7);
        assert!((erfc(0.5) - (1.0 - erf(0.5))).abs() < 1e-15);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.96) - 0.9750021).abs() < 1e-5);
        assert!((normal_cdf(-1.96) - 0.0249979).abs() < 1e-5);
    }

    #[test]
    fn normal_pdf_peak() {
        assert!((normal_pdf(0.0) - 0.3989422804).abs() < 1e-9);
        assert!(normal_pdf(5.0) < normal_pdf(0.0));
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99] {
            let x = normal_quantile(p).unwrap();
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p = {p}");
        }
        assert!(normal_quantile(0.0).is_err());
        assert!(normal_quantile(1.0).is_err());
        assert!(normal_quantile(-0.5).is_err());
    }

    #[test]
    fn z_critical_at_paper_alpha() {
        // The paper uses alpha = 0.05 -> z = 1.96.
        let z = z_critical(0.05).unwrap();
        assert!((z - 1.959964).abs() < 1e-4);
        assert!(z_critical(0.0).is_err());
        assert!(z_critical(1.0).is_err());
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn incomplete_beta_boundaries_and_symmetry() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0).unwrap(), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0).unwrap(), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        let lhs = regularized_incomplete_beta(2.5, 1.5, 0.3).unwrap();
        let rhs = 1.0 - regularized_incomplete_beta(1.5, 2.5, 0.7).unwrap();
        assert!((lhs - rhs).abs() < 1e-10);
        // I_x(1,1) = x (uniform cdf).
        assert!((regularized_incomplete_beta(1.0, 1.0, 0.42).unwrap() - 0.42).abs() < 1e-10);
        assert!(regularized_incomplete_beta(-1.0, 1.0, 0.5).is_err());
        assert!(regularized_incomplete_beta(1.0, 1.0, 1.5).is_err());
    }

    #[test]
    fn t_two_sided_p_known_values() {
        // t=2.776, df=4 -> p ≈ 0.05 (classic t-table value).
        let p = t_two_sided_p(2.776, 4.0).unwrap();
        assert!((p - 0.05).abs() < 1e-3, "got {p}");
        // t = 0 -> p = 1.
        assert!((t_two_sided_p(0.0, 10.0).unwrap() - 1.0).abs() < 1e-12);
        // Large |t| -> tiny p.
        assert!(t_two_sided_p(50.0, 10.0).unwrap() < 1e-10);
        assert_eq!(t_two_sided_p(f64::INFINITY, 5.0).unwrap(), 0.0);
        assert!(t_two_sided_p(1.0, 0.0).is_err());
        assert!(t_two_sided_p(f64::NAN, 5.0).is_err());
    }

    #[test]
    fn incomplete_gamma_known_values() {
        // P(1, x) = 1 - e^{-x} (exponential cdf).
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            let p = regularized_gamma_p(1.0, x).unwrap();
            assert!((p - (1.0 - (-x).exp())).abs() < 1e-12, "x = {x}: {p}");
        }
        assert_eq!(regularized_gamma_p(2.0, 0.0).unwrap(), 0.0);
        assert!(regularized_gamma_p(0.0, 1.0).is_err());
        assert!(regularized_gamma_p(1.0, -1.0).is_err());
        // Monotone in x.
        let lo = regularized_gamma_p(3.0, 1.0).unwrap();
        let hi = regularized_gamma_p(3.0, 5.0).unwrap();
        assert!(lo < hi);
    }

    #[test]
    fn chi_square_sf_known_values() {
        // Classic table values: chi2 = 3.841, df = 1 -> p = 0.05.
        let p = chi_square_sf(3.841, 1.0).unwrap();
        assert!((p - 0.05).abs() < 1e-3, "p = {p}");
        // chi2 = 11.07, df = 5 -> p = 0.05.
        let p = chi_square_sf(11.07, 5.0).unwrap();
        assert!((p - 0.05).abs() < 1e-3, "p = {p}");
        // chi2 = 0 -> p = 1.
        assert!((chi_square_sf(0.0, 4.0).unwrap() - 1.0).abs() < 1e-12);
        assert!(chi_square_sf(1.0, 0.0).is_err());
    }

    #[test]
    fn t_converges_to_normal_for_large_df() {
        // With df = 10_000 the t distribution is ~ normal: P(|T|>1.96) ≈ 0.05.
        let p = t_two_sided_p(1.96, 10_000.0).unwrap();
        assert!((p - 0.05).abs() < 5e-4, "got {p}");
    }
}
