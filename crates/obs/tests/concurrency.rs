//! Concurrency and determinism guarantees of the registry: the shapes
//! the pipeline relies on when it bumps counters from the parallel
//! collection path.

use donorpulse_obs::{Counter, MetricsRegistry};
use std::sync::Arc;

const THREADS: usize = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn concurrent_increments_never_lose_updates() {
    let registry = MetricsRegistry::enabled();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let handle = registry.counter("tweets_seen_total");
            scope.spawn(move || {
                for _ in 0..PER_THREAD {
                    handle.incr();
                }
            });
        }
    });
    assert_eq!(
        registry.snapshot().counter("tweets_seen_total"),
        Some(THREADS as u64 * PER_THREAD)
    );
}

#[test]
fn concurrent_batch_adds_accumulate() {
    // The pipeline's collector reports one batch per worker chunk.
    let counter = Arc::new(Counter::new());
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let c = Arc::clone(&counter);
            scope.spawn(move || {
                for _ in 0..100 {
                    c.add(PER_THREAD / 100);
                }
            });
        }
    });
    assert_eq!(counter.value(), THREADS as u64 * PER_THREAD);
}

#[test]
fn concurrent_registration_of_one_name_shares_storage() {
    // Handles raced from many threads must all land on the same counter.
    let registry = MetricsRegistry::enabled();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let r = registry.clone();
            scope.spawn(move || {
                r.counter("raced").incr();
            });
        }
    });
    let snap = registry.snapshot();
    assert_eq!(snap.counter("raced"), Some(THREADS as u64));
    assert_eq!(snap.counters.len(), 1, "duplicate counter registered");
}

#[test]
fn concurrent_spans_all_recorded() {
    let registry = MetricsRegistry::enabled();
    std::thread::scope(|scope| {
        for i in 0..THREADS {
            let r = registry.clone();
            scope.spawn(move || {
                let mut span = r.stage("worker");
                span.set_items(i as u64);
            });
        }
    });
    let snap = registry.snapshot();
    assert_eq!(snap.stages.len(), THREADS);
    let mut items: Vec<u64> = snap.stages.iter().map(|s| s.items).collect();
    items.sort_unstable();
    assert_eq!(items, (0..THREADS as u64).collect::<Vec<_>>());
}

#[test]
fn disabled_registry_is_inert_under_concurrency() {
    let registry = MetricsRegistry::disabled();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let r = registry.clone();
            scope.spawn(move || {
                r.counter("noop").add(PER_THREAD);
                let mut span = r.stage("noop");
                span.set_items(1);
            });
        }
    });
    assert!(registry.snapshot().is_empty());
}
