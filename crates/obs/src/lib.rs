//! `donorpulse-obs` — dependency-free observability for the donorpulse
//! pipeline.
//!
//! The ROADMAP's north star is a sensor that is "as fast as the hardware
//! allows"; that claim is unverifiable while [`Pipeline::run_on`] is a
//! black box. This crate provides the per-stage accounting layer that
//! the rest of the workspace threads through its call sites:
//!
//! * [`Counter`] / [`Gauge`] — lock-free monotonic counts and
//!   last-write-wins values behind [`std::sync::atomic`] primitives,
//!   safe to bump from the parallel collection path.
//! * [`StageTimer`] — a wall-clock stopwatch over [`std::time::Instant`].
//! * [`Span`] — an RAII stage recording: started from a registry, it
//!   records its name, wall time, and item count when dropped.
//! * [`MetricsRegistry`] — the cloneable handle the pipeline carries.
//!   A registry is either *enabled* (shared storage behind an `Arc`) or
//!   *disabled* (every operation is a no-op and no storage exists), so
//!   instrumentation is zero-cost when observability is off.
//! * [`MetricsSnapshot`] — a stable, ordered, comparable view of
//!   everything recorded, with plaintext-table and JSON reporters.
//!
//! The full metric catalog emitted by the pipeline is documented in
//! `docs/OBSERVABILITY.md` at the workspace root.
//!
//! # Example
//!
//! ```
//! use donorpulse_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::enabled();
//! let seen = registry.counter("tweets_seen_total");
//! {
//!     let mut span = registry.stage("collect");
//!     for _ in 0..100 {
//!         seen.incr();
//!     }
//!     span.set_items(100);
//! } // span drops: wall time + items recorded
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("tweets_seen_total"), Some(100));
//! assert_eq!(snap.stages[0].name, "collect");
//! assert_eq!(snap.stages[0].items, 100);
//! ```
//!
//! Design constraints, in order: no dependencies (std only), no
//! unsafety, no overhead when disabled, deterministic snapshots (two
//! identical seeded pipeline runs produce identical counter, gauge, and
//! item values — only wall times differ).
//!
//! [`Pipeline::run_on`]: ../donorpulse_core/pipeline/struct.Pipeline.html#method.run_on

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metric;
mod registry;
mod snapshot;
mod timer;

pub use metric::{Counter, Gauge};
pub use registry::{CounterHandle, GaugeHandle, MetricsRegistry, Span};
pub use snapshot::{MetricsSnapshot, StageSnapshot};
pub use timer::StageTimer;
