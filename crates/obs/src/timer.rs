//! [`StageTimer`]: the wall-clock stopwatch under every [`Span`].
//!
//! [`Span`]: crate::Span

use std::time::Instant;

/// A started wall-clock stopwatch.
///
/// This is the bare timing primitive; the pipeline normally uses the
/// RAII [`Span`](crate::Span) from
/// [`MetricsRegistry::stage`](crate::MetricsRegistry::stage), which
/// couples a timer to a named stage record.
///
/// ```
/// use donorpulse_obs::StageTimer;
///
/// let timer = StageTimer::start();
/// let n: u64 = (0..10_000).sum(); // the work being timed
/// assert!(n > 0);
/// let nanos = timer.elapsed_nanos();
/// // Elapsed time is monotone: reading again can only grow.
/// assert!(timer.elapsed_nanos() >= nanos);
/// assert!(timer.elapsed_secs() >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StageTimer {
    start: Instant,
}

impl StageTimer {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`StageTimer::start`], saturated at
    /// `u64::MAX` (≈ 584 years).
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Seconds elapsed since [`StageTimer::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_is_monotone() {
        let t = StageTimer::start();
        let a = t.elapsed_nanos();
        let b = t.elapsed_nanos();
        assert!(b >= a);
    }
}
