//! The two storage primitives: monotonic [`Counter`]s and
//! last-write-wins [`Gauge`]s, both plain `AtomicU64`s.
//!
//! These are the *storage* types; instrumented code normally goes
//! through the [`CounterHandle`]/[`GaugeHandle`] wrappers handed out by
//! a [`MetricsRegistry`], which degrade to no-ops when the registry is
//! disabled.
//!
//! [`CounterHandle`]: crate::CounterHandle
//! [`GaugeHandle`]: crate::GaugeHandle
//! [`MetricsRegistry`]: crate::MetricsRegistry

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count.
///
/// Increments use [`Ordering::Relaxed`]: counters carry no ordering
/// obligations toward other memory, only their own total, which is
/// exactly the contract of a statistics counter. Concurrent increments
/// from many threads never lose updates.
///
/// ```
/// use donorpulse_obs::Counter;
/// use std::sync::Arc;
///
/// let tweets = Arc::new(Counter::new());
/// let handles: Vec<_> = (0..4)
///     .map(|_| {
///         let c = Arc::clone(&tweets);
///         std::thread::spawn(move || {
///             for _ in 0..1000 {
///                 c.incr();
///             }
///         })
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// assert_eq!(tweets.value(), 4000);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one; returns the new total.
    ///
    /// ```
    /// use donorpulse_obs::Counter;
    /// let c = Counter::new();
    /// assert_eq!(c.incr(), 1);
    /// assert_eq!(c.incr(), 2);
    /// ```
    pub fn incr(&self) -> u64 {
        self.add(1)
    }

    /// Adds `n` (a batch observed at once, e.g. one collector chunk);
    /// returns the new total.
    pub fn add(&self, n: u64) -> u64 {
        self.value.fetch_add(n, Ordering::Relaxed) + n
    }

    /// The current total.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (a dimension, a chosen `k`).
///
/// ```
/// use donorpulse_obs::Gauge;
/// let g = Gauge::new();
/// g.set(52);
/// assert_eq!(g.value(), 52);
/// g.set(6); // gauges overwrite, they do not accumulate
/// assert_eq!(g.value(), 6);
/// ```
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// The most recently written value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        assert_eq!(c.value(), 0);
        c.incr();
        c.add(41);
        assert_eq!(c.value(), 42);
    }

    #[test]
    fn gauge_overwrites() {
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.value(), 3);
    }
}
