//! [`MetricsSnapshot`]: the stable view of a registry, plus its
//! plaintext-table and JSON reporters.

use std::fmt::Write as _;

/// One finished stage as seen by a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageSnapshot {
    /// Stage name (e.g. `collect`, `attention` — the catalog lives in
    /// `docs/OBSERVABILITY.md`).
    pub name: String,
    /// Wall-clock time the stage took, in nanoseconds. The only field
    /// that varies between identical seeded runs.
    pub wall_nanos: u64,
    /// Items the stage processed (tweets, users, rows — per-stage units
    /// are documented in the catalog).
    pub items: u64,
}

impl StageSnapshot {
    /// Wall time in seconds.
    pub fn wall_secs(&self) -> f64 {
        self.wall_nanos as f64 / 1e9
    }

    /// Items per second, or `None` when the stage recorded no items or
    /// finished faster than the clock resolution.
    pub fn throughput(&self) -> Option<f64> {
        if self.items == 0 || self.wall_nanos == 0 {
            return None;
        }
        Some(self.items as f64 / self.wall_secs())
    }
}

/// Everything a registry recorded, in a stable order: stages in
/// completion order, counters and gauges sorted by name.
///
/// Equality compares every field including wall times; for asserting
/// determinism across seeded runs compare [`MetricsSnapshot::counters`],
/// [`MetricsSnapshot::gauges`], and the `(name, items)` projection of
/// [`MetricsSnapshot::stages`] — wall times legitimately differ.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Finished stages, in completion order.
    pub stages: Vec<StageSnapshot>,
    /// `(name, total)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, sorted by name.
    pub gauges: Vec<(String, u64)>,
}

impl MetricsSnapshot {
    /// True when nothing was recorded (always true for a snapshot of a
    /// disabled registry).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty() && self.counters.is_empty() && self.gauges.is_empty()
    }

    /// The counter registered under `name`, if any.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The gauge registered under `name`, if any.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The stage named `name`, if it ran.
    pub fn stage(&self, name: &str) -> Option<&StageSnapshot> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// The `(name, items)` projection of the stages — the part of the
    /// stage records that is deterministic across seeded runs.
    pub fn stage_items(&self) -> Vec<(String, u64)> {
        self.stages
            .iter()
            .map(|s| (s.name.clone(), s.items))
            .collect()
    }

    /// Renders the per-stage table plus counter/gauge listings:
    ///
    /// ```text
    /// STAGE METRICS
    /// stage                   wall       items    items/sec
    /// collect              1.204 s   3,900,084    3,239,272
    /// ...
    /// COUNTERS
    /// collected_tweets_total            243,755
    /// ...
    /// ```
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("(no metrics recorded: registry disabled)\n");
            return out;
        }
        out.push_str("STAGE METRICS\n");
        let _ = writeln!(
            out,
            "{:<20} {:>12} {:>12} {:>12}",
            "stage", "wall", "items", "items/sec"
        );
        for s in &self.stages {
            let throughput = s
                .throughput()
                .map_or_else(|| "-".to_string(), |t| group_digits(t.round() as u64));
            let _ = writeln!(
                out,
                "{:<20} {:>12} {:>12} {:>12}",
                s.name,
                format_duration(s.wall_nanos),
                group_digits(s.items),
                throughput
            );
        }
        if !self.counters.is_empty() {
            out.push_str("COUNTERS\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "{:<32} {:>12}", name, group_digits(*v));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("GAUGES\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "{:<32} {:>12}", name, group_digits(*v));
            }
        }
        out
    }

    /// Serializes the snapshot as a self-contained JSON document (this
    /// crate is dependency-free, so the writer is hand-rolled; names
    /// are escaped per RFC 8259).
    ///
    /// Layout:
    ///
    /// ```json
    /// {
    ///   "stages": [
    ///     {"name": "collect", "wall_nanos": 9, "items": 4, "items_per_sec": 4.4e8}
    ///   ],
    ///   "counters": {"collected_tweets_total": 4},
    ///   "gauges": {"attention_organs": 6}
    /// }
    /// ```
    ///
    /// `items_per_sec` is `null` when [`StageSnapshot::throughput`] is
    /// undefined.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"stages\": [");
        for (i, s) in self.stages.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let throughput = s
                .throughput()
                .map_or_else(|| "null".to_string(), format_f64);
            let _ = write!(
                out,
                "{sep}\n    {{\"name\": {}, \"wall_nanos\": {}, \"items\": {}, \"items_per_sec\": {}}}",
                json_string(&s.name),
                s.wall_nanos,
                s.items,
                throughput
            );
        }
        if !self.stages.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        json_map(&mut out, "counters", &self.counters);
        out.push_str(",\n");
        json_map(&mut out, "gauges", &self.gauges);
        out.push_str("\n}");
        out
    }
}

/// Writes `"key": {"name": value, ...}` (no trailing newline).
fn json_map(out: &mut String, key: &str, pairs: &[(String, u64)]) {
    let _ = write!(out, "  \"{key}\": {{");
    for (i, (name, v)) in pairs.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    {}: {}", json_string(name), v);
    }
    if !pairs.is_empty() {
        out.push_str("\n  ");
    }
    out.push('}');
}

/// JSON string literal with RFC 8259 escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite f64 as a JSON number.
fn format_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// `1234567` → `"1,234,567"`.
fn group_digits(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Nanoseconds as a human-readable duration with a unit that keeps
/// three significant-ish digits (`1.204 s`, `83.1 ms`, `912 ns`).
fn format_duration(nanos: u64) -> String {
    let n = nanos as f64;
    if n >= 1e9 {
        format!("{:.3} s", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.1} ms", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.1} us", n / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            stages: vec![
                StageSnapshot {
                    name: "collect".into(),
                    wall_nanos: 2_000_000_000,
                    items: 1_000_000,
                },
                StageSnapshot {
                    name: "attention".into(),
                    wall_nanos: 0,
                    items: 0,
                },
            ],
            counters: vec![("collected_tweets_total".into(), 243_755)],
            gauges: vec![("attention_organs".into(), 6)],
        }
    }

    #[test]
    fn throughput_is_items_over_seconds() {
        let s = sample();
        let t = s.stages[0].throughput().unwrap();
        assert!((t - 500_000.0).abs() < 1e-6);
        assert_eq!(s.stages[1].throughput(), None);
    }

    #[test]
    fn lookups_find_metrics() {
        let s = sample();
        assert_eq!(s.counter("collected_tweets_total"), Some(243_755));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.gauge("attention_organs"), Some(6));
        assert_eq!(s.stage("collect").unwrap().items, 1_000_000);
        assert_eq!(
            s.stage_items(),
            vec![
                ("collect".to_string(), 1_000_000),
                ("attention".to_string(), 0)
            ]
        );
    }

    #[test]
    fn table_lists_every_section() {
        let rendered = sample().render_table();
        assert!(rendered.contains("STAGE METRICS"));
        assert!(rendered.contains("collect"));
        assert!(rendered.contains("2.000 s"));
        assert!(rendered.contains("500,000"));
        assert!(rendered.contains("COUNTERS"));
        assert!(rendered.contains("collected_tweets_total"));
        assert!(rendered.contains("GAUGES"));
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let s = MetricsSnapshot::default();
        assert!(s.is_empty());
        assert!(s.render_table().contains("registry disabled"));
    }

    #[test]
    fn json_is_well_formed_and_ordered() {
        let j = sample().to_json();
        // Cheap structural checks without a JSON parser (this crate is
        // dependency-free); the bench tests parse it with serde_json.
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"stages\": ["));
        assert!(j.contains("\"name\": \"collect\""));
        assert!(j.contains("\"counters\": {"));
        assert!(j.contains("\"collected_tweets_total\": 243755"));
        assert!(j.contains("\"items_per_sec\": null"));
        let collect = j.find("\"collect\"").unwrap();
        let attention = j.find("\"attention\"").unwrap();
        assert!(collect < attention, "stage order lost");
    }

    #[test]
    fn json_escapes_names() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\u000a\"");
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1_000), "1,000");
        assert_eq!(group_digits(1_234_567), "1,234,567");
    }

    #[test]
    fn duration_units() {
        assert_eq!(format_duration(912), "912 ns");
        assert_eq!(format_duration(83_100), "83.1 us");
        assert_eq!(format_duration(83_100_000), "83.1 ms");
        assert_eq!(format_duration(1_204_000_000), "1.204 s");
    }
}
