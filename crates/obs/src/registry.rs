//! [`MetricsRegistry`]: the cloneable handle instrumented code carries,
//! plus the [`CounterHandle`]/[`GaugeHandle`]/[`Span`] wrappers it hands
//! out.

use crate::metric::{Counter, Gauge};
use crate::snapshot::{MetricsSnapshot, StageSnapshot};
use crate::timer::StageTimer;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One finished stage: name, wall time, item count. Stored in arrival
/// order so the snapshot reads like the pipeline executed.
#[derive(Debug, Clone)]
struct StageRecord {
    name: &'static str,
    wall_nanos: u64,
    items: u64,
}

/// Shared storage behind an enabled registry. Counters and gauges live
/// in name-keyed maps (`BTreeMap` so snapshots are ordered without a
/// sort); finished stages append to a vector.
#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    stages: Mutex<Vec<StageRecord>>,
}

/// The registry the pipeline threads through its stages.
///
/// A registry is *enabled* (storage behind an `Arc`; clones share it)
/// or *disabled* (no storage at all). Every operation on a disabled
/// registry — and on every handle or span it hands out — is a no-op
/// that touches no atomics and takes no locks, so a pipeline built with
/// the default disabled registry pays nothing for its instrumentation.
///
/// Metric names are `&'static str` by design: the pipeline emits a
/// fixed catalog (see `docs/OBSERVABILITY.md`), not user-generated
/// label sets, and static names keep registration allocation-free.
///
/// ```
/// use donorpulse_obs::MetricsRegistry;
///
/// let registry = MetricsRegistry::enabled();
/// registry.counter("collected_tweets_total").add(975_021);
/// registry.gauge("attention_organs").set(6);
///
/// let snap = registry.snapshot();
/// assert_eq!(snap.counter("collected_tweets_total"), Some(975_021));
/// assert_eq!(snap.gauge("attention_organs"), Some(6));
///
/// // A disabled registry records nothing:
/// let off = MetricsRegistry::disabled();
/// off.counter("collected_tweets_total").add(1);
/// assert!(off.snapshot().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<Inner>>,
}

impl MetricsRegistry {
    /// A recording registry. Clones share storage.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A no-op registry (also what [`Default`] returns): records
    /// nothing, allocates nothing, and its snapshot is always empty.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The counter registered under `name`, creating it at zero on
    /// first use. All handles for one name share one underlying
    /// [`Counter`], so concurrent increments through different handles
    /// accumulate into the same total.
    pub fn counter(&self, name: &'static str) -> CounterHandle {
        CounterHandle {
            counter: self.inner.as_ref().map(|inner| {
                Arc::clone(
                    inner
                        .counters
                        .lock()
                        .expect("counter map poisoned")
                        .entry(name)
                        .or_default(),
                )
            }),
        }
    }

    /// The gauge registered under `name`, creating it at zero on first
    /// use.
    pub fn gauge(&self, name: &'static str) -> GaugeHandle {
        GaugeHandle {
            gauge: self.inner.as_ref().map(|inner| {
                Arc::clone(
                    inner
                        .gauges
                        .lock()
                        .expect("gauge map poisoned")
                        .entry(name)
                        .or_default(),
                )
            }),
        }
    }

    /// Starts a named stage. The returned [`Span`] records its wall
    /// time and item count into this registry when dropped (or when
    /// [`Span::finish`] is called). On a disabled registry the span
    /// never reads the clock.
    pub fn stage(&self, name: &'static str) -> Span {
        Span {
            name,
            items: 0,
            timer: self.inner.as_ref().map(|_| StageTimer::start()),
            sink: self.inner.clone(),
        }
    }

    /// A stable, ordered snapshot of everything recorded so far.
    ///
    /// Stages appear in completion order; counters and gauges in name
    /// order. Counter, gauge, and item values from a seeded pipeline
    /// run are deterministic — only `wall_nanos` varies between runs.
    ///
    /// ```
    /// use donorpulse_obs::MetricsRegistry;
    ///
    /// let registry = MetricsRegistry::enabled();
    /// {
    ///     let mut span = registry.stage("usa_filter");
    ///     span.set_items(134_986);
    /// }
    /// registry.counter("usa_tweets_total").add(134_986);
    ///
    /// let snap = registry.snapshot();
    /// assert_eq!(snap.stages.len(), 1);
    /// assert_eq!(snap.stages[0].items, 134_986);
    /// assert_eq!(snap.counters, vec![("usa_tweets_total".to_string(), 134_986)]);
    /// ```
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let stages = inner
            .stages
            .lock()
            .expect("stage list poisoned")
            .iter()
            .map(|r| StageSnapshot {
                name: r.name.to_string(),
                wall_nanos: r.wall_nanos,
                items: r.items,
            })
            .collect();
        let counters = inner
            .counters
            .lock()
            .expect("counter map poisoned")
            .iter()
            .map(|(&name, c)| (name.to_string(), c.value()))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .expect("gauge map poisoned")
            .iter()
            .map(|(&name, g)| (name.to_string(), g.value()))
            .collect();
        MetricsSnapshot {
            stages,
            counters,
            gauges,
        }
    }
}

/// A cheap handle on one registered [`Counter`]. All operations are
/// no-ops when the handle came from a disabled registry.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle {
    counter: Option<Arc<Counter>>,
}

impl CounterHandle {
    /// Adds one.
    pub fn incr(&self) {
        if let Some(c) = &self.counter {
            c.incr();
        }
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.counter {
            c.add(n);
        }
    }

    /// The current total (zero on a disabled registry).
    pub fn value(&self) -> u64 {
        self.counter.as_ref().map_or(0, |c| c.value())
    }
}

/// A cheap handle on one registered [`Gauge`]. All operations are
/// no-ops when the handle came from a disabled registry.
#[derive(Debug, Clone, Default)]
pub struct GaugeHandle {
    gauge: Option<Arc<Gauge>>,
}

impl GaugeHandle {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.gauge {
            g.set(v);
        }
    }

    /// The most recently written value (zero on a disabled registry).
    pub fn value(&self) -> u64 {
        self.gauge.as_ref().map_or(0, |g| g.value())
    }
}

/// An in-flight pipeline stage, created by [`MetricsRegistry::stage`].
///
/// The span measures wall time from creation to drop and carries an
/// item count (tweets, users, rows — whatever the stage processes) so
/// the snapshot can report per-stage throughput. Dropping the span
/// records it; [`Span::finish`] does the same explicitly at a point of
/// your choosing.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    items: u64,
    timer: Option<StageTimer>,
    sink: Option<Arc<Inner>>,
}

impl Span {
    /// Sets the number of items this stage processed.
    pub fn set_items(&mut self, n: u64) {
        self.items = n;
    }

    /// Adds to the number of items this stage processed.
    pub fn add_items(&mut self, n: u64) {
        self.items += n;
    }

    /// Stops the clock and records the stage now.
    pub fn finish(self) {
        drop(self);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(timer), Some(sink)) = (&self.timer, self.sink.take()) {
            sink.stages
                .lock()
                .expect("stage list poisoned")
                .push(StageRecord {
                    name: self.name,
                    wall_nanos: timer.elapsed_nanos(),
                    items: self.items,
                });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = MetricsRegistry::disabled();
        r.counter("a").incr();
        r.gauge("b").set(9);
        let mut span = r.stage("c");
        span.set_items(5);
        span.finish();
        assert!(!r.is_enabled());
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn handles_share_storage() {
        let r = MetricsRegistry::enabled();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(r.counter("x").value(), 5);
    }

    #[test]
    fn clones_share_storage() {
        let r = MetricsRegistry::enabled();
        let clone = r.clone();
        clone.counter("x").incr();
        assert_eq!(r.snapshot().counter("x"), Some(1));
    }

    #[test]
    fn spans_record_in_completion_order() {
        let r = MetricsRegistry::enabled();
        {
            let mut s = r.stage("first");
            s.set_items(1);
        }
        {
            let mut s = r.stage("second");
            s.add_items(1);
            s.add_items(1);
        }
        let snap = r.snapshot();
        let names: Vec<&str> = snap.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["first", "second"]);
        assert_eq!(snap.stages[1].items, 2);
    }

    #[test]
    fn snapshot_orders_counters_by_name() {
        let r = MetricsRegistry::enabled();
        r.counter("zebra").incr();
        r.counter("alpha").incr();
        let names: Vec<String> = r.snapshot().counters.into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "zebra"]);
    }
}
