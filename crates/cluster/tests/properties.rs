//! Property-based tests for the clustering substrate.

use donorpulse_cluster::validation::{adjusted_rand_index, purity};
use donorpulse_cluster::{
    agglomerative, silhouette_score, Dendrogram, KMeans, KMeansConfig, Linkage, Metric,
};
use proptest::prelude::*;

fn rows_strategy(n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-50.0..50.0f64, dim), n..=n)
}

fn distributions(n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.01..1.0f64, dim), n..=n).prop_map(|rows| {
        rows.into_iter()
            .map(|r| {
                let s: f64 = r.iter().sum();
                r.into_iter().map(|v| v / s).collect()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dendrogram_invariants(rows in rows_strategy(8, 3)) {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average, Linkage::Ward] {
            let d: Dendrogram = agglomerative(&rows, Metric::Euclidean, linkage).unwrap();
            prop_assert_eq!(d.merges().len(), rows.len() - 1);
            // Final merge covers all leaves.
            prop_assert_eq!(d.merges().last().unwrap().size, rows.len());
            // Every cut returns the requested number of clusters.
            for k in 1..=rows.len() {
                let labels = d.cut(k).unwrap();
                let mut distinct = labels.clone();
                distinct.sort_unstable();
                distinct.dedup();
                prop_assert_eq!(distinct.len(), k);
            }
            // Leaf order is a permutation.
            let mut order = d.leaf_order();
            order.sort_unstable();
            prop_assert_eq!(order, (0..rows.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn single_and_complete_bracket_average(rows in rows_strategy(7, 2)) {
        // For any dataset, max merge height: single <= average <= complete.
        let h = |l: Linkage| {
            agglomerative(&rows, Metric::Euclidean, l)
                .unwrap()
                .merges()
                .iter()
                .map(|m| m.height)
                .fold(0.0_f64, f64::max)
        };
        let s = h(Linkage::Single);
        let a = h(Linkage::Average);
        let c = h(Linkage::Complete);
        prop_assert!(s <= a + 1e-9);
        prop_assert!(a <= c + 1e-9);
    }

    #[test]
    fn bhattacharyya_clustering_never_panics(rows in distributions(6, 4)) {
        let _ = agglomerative(&rows, Metric::Bhattacharyya, Linkage::Average).unwrap();
    }

    #[test]
    fn kmeans_labels_in_range_and_partition(rows in rows_strategy(20, 3), k in 1usize..6) {
        let model = KMeans::fit(&rows, KMeansConfig::new(k).with_seed(99)).unwrap();
        prop_assert_eq!(model.labels.len(), rows.len());
        prop_assert!(model.labels.iter().all(|&l| l < k));
        prop_assert!(model.inertia >= 0.0);
        prop_assert_eq!(model.cluster_sizes().iter().sum::<usize>(), rows.len());
    }

    #[test]
    fn kmeans_inertia_nonincreasing_in_k(rows in rows_strategy(24, 2)) {
        let i2 = KMeans::fit(&rows, KMeansConfig::new(2).with_seed(5)).unwrap().inertia;
        let i8 = KMeans::fit(&rows, KMeansConfig::new(8).with_seed(5)).unwrap().inertia;
        // k-means++ with a fixed seed isn't globally optimal, but with 4x
        // the clusters the inertia should not be meaningfully larger.
        prop_assert!(i8 <= i2 * 1.05 + 1e-9, "i2 {} i8 {}", i2, i8);
    }

    #[test]
    fn silhouette_bounded(rows in rows_strategy(12, 2), seed in 0u64..20) {
        let model = KMeans::fit(&rows, KMeansConfig::new(3).with_seed(seed)).unwrap();
        if let Ok(s) = silhouette_score(&rows, &model.labels, Metric::Euclidean) {
            prop_assert!((-1.0..=1.0).contains(&s), "score {}", s);
        }
    }

    #[test]
    fn ari_symmetric_and_bounded(
        a in prop::collection::vec(0usize..4, 30),
        b in prop::collection::vec(0usize..4, 30),
    ) {
        let ab = adjusted_rand_index(&a, &b).unwrap();
        let ba = adjusted_rand_index(&b, &a).unwrap();
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab <= 1.0 + 1e-9);
        prop_assert!((adjusted_rand_index(&a, &a).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn purity_bounded_and_perfect_on_self(labels in prop::collection::vec(0usize..5, 25)) {
        let p = purity(&labels, &labels).unwrap();
        prop_assert!((p - 1.0).abs() < 1e-12);
    }
}
