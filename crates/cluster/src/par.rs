//! Deterministic, dependency-free parallel primitives.
//!
//! Everything here is built on `std::thread::scope` — no external
//! runtime — and is designed around one invariant: **results are
//! bit-identical for any thread count, including 1**. The trick is
//! fixed-order chunked reduction: work is split into chunks whose
//! boundaries depend only on the input size (never on the thread
//! count), each chunk produces a partial result, and partials are
//! merged sequentially in chunk order. Floating-point accumulation
//! therefore follows one canonical association for every `threads`
//! value; worker scheduling only decides *who* computes a chunk, never
//! *what* or *in which merge position*.
//!
//! The kernels in [`crate::kmeans`], [`crate::silhouette`], and
//! [`crate::metric`] all reduce through this module, which is what
//! makes the pipeline's `compute_threads` knob observationally
//! invisible in every artifact.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Rows per chunk for row-indexed kernels (Lloyd assignment,
/// silhouette). Chosen so a chunk's working set stays cache-resident
/// while still yielding plenty of chunks to balance across workers at
/// the paper's ~72k-user scale.
pub const ROW_CHUNK: usize = 2048;

/// Observations per chunk for silhouette kernels, where each
/// observation already costs `O(n)` distance evaluations — chunks are
/// finer than [`ROW_CHUNK`] so even a 2 000-point silhouette subsample
/// splits across workers.
pub const SIL_CHUNK: usize = 128;

/// Pairs per chunk for pairwise-distance kernels (the agglomerative
/// distance-matrix build).
pub const PAIR_CHUNK: usize = 1024;

/// Resolves a thread-count knob: `0` means "all available cores",
/// anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

/// Number of fixed-size chunks `n` items split into under `chunk`.
/// This is the value the pipeline reports through its `*_chunks`
/// gauges; it depends only on `n`, never on the thread count.
pub fn chunk_count(n: usize, chunk: usize) -> usize {
    n.div_ceil(chunk)
}

/// Maps `f` over fixed chunks of `0..n` and returns the partial results
/// **in chunk order**, computing chunks on up to `threads` workers
/// (resolved via [`resolve_threads`]).
///
/// `f` receives `(chunk_index, index_range)`. Chunk boundaries are a
/// pure function of `(n, chunk)`, and the returned `Vec` is ordered by
/// chunk index, so any fold over it is deterministic and
/// thread-count-invariant. With one worker (or one chunk) everything
/// runs inline on the calling thread — same code path, same chunking,
/// same merge order.
pub fn map_chunks<T, F>(n: usize, chunk: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
{
    assert!(chunk > 0, "chunk size must be nonzero");
    let chunks = chunk_count(n, chunk);
    if chunks == 0 {
        return Vec::new();
    }
    let range_of = |c: usize| (c * chunk)..(((c + 1) * chunk).min(n));
    let workers = resolve_threads(threads).min(chunks);
    if workers <= 1 {
        return (0..chunks).map(|c| f(c, range_of(c))).collect();
    }

    // Work-stealing over an atomic chunk cursor; results flow back over
    // a channel tagged with their chunk index and are reordered before
    // returning, so scheduling nondeterminism never leaks out.
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= chunks {
                    break;
                }
                let out = f(c, range_of(c));
                if tx.send((c, out)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<T>> = (0..chunks).map(|_| None).collect();
    for (c, out) in rx {
        slots[c] = Some(out);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every chunk produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_zero_means_all_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn chunk_count_depends_only_on_n() {
        assert_eq!(chunk_count(0, ROW_CHUNK), 0);
        assert_eq!(chunk_count(1, ROW_CHUNK), 1);
        assert_eq!(chunk_count(ROW_CHUNK, ROW_CHUNK), 1);
        assert_eq!(chunk_count(ROW_CHUNK + 1, ROW_CHUNK), 2);
    }

    #[test]
    fn map_chunks_returns_partials_in_chunk_order() {
        for threads in [1, 2, 4, 0] {
            let partials = map_chunks(10, 3, threads, |c, range| (c, range));
            assert_eq!(
                partials,
                vec![(0, 0..3), (1, 3..6), (2, 6..9), (3, 9..10)],
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn map_chunks_reduction_is_thread_invariant() {
        // A floating-point sum whose chunked association must be
        // bit-identical for every thread count.
        let values: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.731).sin()).collect();
        let sum_with = |threads: usize| -> f64 {
            map_chunks(values.len(), 64, threads, |_, range| {
                range.map(|i| values[i]).sum::<f64>()
            })
            .into_iter()
            .sum()
        };
        let base = sum_with(1);
        for threads in [2, 3, 4, 8, 0] {
            assert_eq!(base.to_bits(), sum_with(threads).to_bits());
        }
    }

    #[test]
    fn map_chunks_empty_input() {
        let partials: Vec<u32> = map_chunks(0, 8, 4, |_, _| 1);
        assert!(partials.is_empty());
    }

    #[test]
    fn map_chunks_propagates_results_from_many_workers() {
        // More chunks than workers: every chunk must land exactly once.
        let partials = map_chunks(1000, 7, 5, |c, range| (c, range.len()));
        assert_eq!(partials.len(), chunk_count(1000, 7));
        for (i, (c, _)) in partials.iter().enumerate() {
            assert_eq!(i, *c);
        }
        let total: usize = partials.iter().map(|(_, l)| l).sum();
        assert_eq!(total, 1000);
    }
}
