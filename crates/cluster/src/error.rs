use std::fmt;

/// Errors produced by clustering routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Fewer observations than required (e.g. k > n for K-Means).
    TooFewObservations {
        /// Observations required.
        needed: usize,
        /// Observations given.
        got: usize,
        /// What was being attempted.
        what: &'static str,
    },
    /// Observations have inconsistent dimensionality.
    DimensionMismatch {
        /// Expected dimensionality (from the first row).
        expected: usize,
        /// Offending row's dimensionality.
        got: usize,
        /// Offending row index.
        row: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Human-readable description.
        reason: String,
    },
    /// The distance computation failed (e.g. negative entries fed to
    /// Bhattacharyya).
    Distance(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::TooFewObservations { needed, got, what } => {
                write!(f, "{what}: needs at least {needed} observations, got {got}")
            }
            ClusterError::DimensionMismatch { expected, got, row } => {
                write!(f, "row {row} has dimension {got}, expected {expected}")
            }
            ClusterError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            ClusterError::Distance(msg) => write!(f, "distance computation failed: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<donorpulse_stats::StatsError> for ClusterError {
    fn from(e: donorpulse_stats::StatsError) -> Self {
        ClusterError::Distance(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ClusterError::TooFewObservations {
            needed: 12,
            got: 3,
            what: "kmeans",
        };
        assert!(e.to_string().contains("kmeans"));
        let d = ClusterError::DimensionMismatch {
            expected: 6,
            got: 5,
            row: 2,
        };
        assert!(d.to_string().contains("row 2"));
    }

    #[test]
    fn stats_error_converts() {
        let se = donorpulse_stats::StatsError::EmptyInput { what: "x" };
        let ce: ClusterError = se.into();
        assert!(matches!(ce, ClusterError::Distance(_)));
    }
}
