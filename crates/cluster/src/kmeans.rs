//! K-Means with k-means++ seeding (Lloyd's algorithm).
//!
//! The paper clusters ~72k user attention vectors with K-Means and picks
//! `k = 12` by comparing inertia, average cluster size, and silhouette
//! coefficient (Fig. 7). This implementation is deterministic given the
//! seed, handles empty clusters by re-seeding them on the farthest
//! point, and reports inertia per iteration so convergence is testable.
//!
//! The hot loop — Lloyd assignment plus centroid accumulation — runs on
//! a contiguous [`Rows`] buffer and parallelizes through
//! [`crate::par`]'s fixed-order chunked reduction, so results are
//! bit-identical for any thread count (see [`KMeans::fit_rows`]).

use crate::par;
use crate::{ClusterError, Result};
use donorpulse_linalg::Rows;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// K-Means configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence threshold on total centroid movement.
    pub tol: f64,
    /// RNG seed (k-means++ and empty-cluster reseeding).
    pub seed: u64,
}

impl KMeansConfig {
    /// A sensible default for the given `k`.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iter: 100,
            tol: 1e-7,
            seed: 0,
        }
    }

    /// Builder: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A fitted K-Means model.
///
/// ```
/// use donorpulse_cluster::{KMeans, KMeansConfig};
///
/// let rows = vec![
///     vec![0.0], vec![0.1], // one blob
///     vec![9.0], vec![9.1], // another
/// ];
/// let model = KMeans::fit(&rows, KMeansConfig::new(2).with_seed(1)).unwrap();
/// assert_eq!(model.labels[0], model.labels[1]);
/// assert_ne!(model.labels[0], model.labels[2]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    /// Final centroids (`k` rows).
    pub centroids: Vec<Vec<f64>>,
    /// Cluster label per observation.
    pub labels: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// True when the run converged before `max_iter`.
    pub converged: bool,
}

/// One chunk's worth of Lloyd work: chunk-local labels, per-cluster
/// partial sums/counts, and the chunk's inertia contribution.
struct LloydPartial {
    labels: Vec<usize>,
    sums: Vec<f64>,
    counts: Vec<usize>,
    inertia: f64,
}

impl KMeans {
    /// Fits K-Means to per-observation vectors.
    ///
    /// Compatibility entry point: validates the ragged input, packs it
    /// into a contiguous [`Rows`] buffer, and runs single-threaded.
    /// Identical results to [`KMeans::fit_rows`] at any thread count.
    pub fn fit(rows: &[Vec<f64>], config: KMeansConfig) -> Result<KMeans> {
        if config.k == 0 {
            return Err(ClusterError::InvalidParameter {
                reason: "k must be positive".to_string(),
            });
        }
        if rows.len() < config.k {
            return Err(ClusterError::TooFewObservations {
                needed: config.k,
                got: rows.len(),
                what: "kmeans",
            });
        }
        let dim = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != dim {
                return Err(ClusterError::DimensionMismatch {
                    expected: dim,
                    got: r.len(),
                    row: i,
                });
            }
        }
        let packed = Rows::from_vecs(rows).map_err(|e| ClusterError::InvalidParameter {
            reason: e.to_string(),
        })?;
        Self::fit_rows(&packed, config, 1)
    }

    /// Fits K-Means to a contiguous [`Rows`] buffer on up to `threads`
    /// workers (`0` = all cores).
    ///
    /// Deterministic and thread-count-invariant: the assignment step
    /// and the centroid accumulation both reduce through
    /// [`par::map_chunks`], whose chunk boundaries and merge order
    /// depend only on `rows.len()`. The model produced is bit-identical
    /// for `threads` = 1, 2, 4, 0, ….
    pub fn fit_rows(rows: &Rows, config: KMeansConfig, threads: usize) -> Result<KMeans> {
        let n = rows.len();
        if config.k == 0 {
            return Err(ClusterError::InvalidParameter {
                reason: "k must be positive".to_string(),
            });
        }
        if n < config.k {
            return Err(ClusterError::TooFewObservations {
                needed: config.k,
                got: n,
                what: "kmeans",
            });
        }
        let dim = rows.dim();
        let k = config.k;

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut centroids = plus_plus_init(rows, k, &mut rng);
        let mut labels = vec![0usize; n];
        let mut iterations = 0;
        let mut converged = false;

        for iter in 0..config.max_iter {
            iterations = iter + 1;
            // Fused assignment + accumulation pass over the rows.
            let (new_labels, sums, counts, _) = lloyd_pass(rows, &centroids, k, threads);
            labels = new_labels;

            let mut movement = 0.0;
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed the empty cluster on the point farthest
                    // from its centroid.
                    let mut far = 0;
                    let mut far_d = f64::NEG_INFINITY;
                    for (i, &lab) in labels.iter().enumerate() {
                        let d = dist2(rows.row(i), centroid(&centroids, lab, dim));
                        if d > far_d {
                            far = i;
                            far_d = d;
                        }
                    }
                    let new_c = rows.row(far);
                    movement += diff_norm(new_c, centroid(&centroids, c, dim));
                    centroids[c * dim..(c + 1) * dim].copy_from_slice(new_c);
                    continue;
                }
                let inv = 1.0 / counts[c] as f64;
                let mut m2 = 0.0;
                for d in 0..dim {
                    let new_v = sums[c * dim + d] * inv;
                    let old_v = centroids[c * dim + d];
                    m2 += (new_v - old_v) * (new_v - old_v);
                    centroids[c * dim + d] = new_v;
                }
                movement += m2.sqrt();
            }
            if movement <= config.tol {
                converged = true;
                break;
            }
        }

        // Final assignment against the last centroids.
        let (final_labels, _, _, inertia) = lloyd_pass(rows, &centroids, k, threads);
        labels = final_labels;

        Ok(KMeans {
            centroids: centroids.chunks_exact(dim).map(<[f64]>::to_vec).collect(),
            labels,
            inertia,
            iterations,
            converged,
        })
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Cluster sizes (indexed by label).
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Average cluster size.
    pub fn average_cluster_size(&self) -> f64 {
        self.labels.len() as f64 / self.k() as f64
    }

    /// Predicts the cluster of a new observation.
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (c, centroid) in self.centroids.iter().enumerate() {
            let d = dist2(row, centroid);
            if d < best_d {
                best = c;
                best_d = d;
            }
        }
        best
    }
}

/// One full pass over the rows: nearest-centroid labels, per-cluster
/// sums and counts, and total inertia — computed per fixed chunk and
/// merged in chunk order, so every output is thread-count-invariant.
fn lloyd_pass(
    rows: &Rows,
    centroids: &[f64],
    k: usize,
    threads: usize,
) -> (Vec<usize>, Vec<f64>, Vec<usize>, f64) {
    let n = rows.len();
    let dim = rows.dim();
    let partials = par::map_chunks(n, par::ROW_CHUNK, threads, |_, range| {
        let mut part = LloydPartial {
            labels: Vec::with_capacity(range.len()),
            sums: vec![0.0; k * dim],
            counts: vec![0usize; k],
            inertia: 0.0,
        };
        for i in range {
            let row = rows.row(i);
            let (label, d2) = nearest_flat(row, centroids, dim);
            part.labels.push(label);
            part.counts[label] += 1;
            part.inertia += d2;
            for (s, v) in part.sums[label * dim..(label + 1) * dim]
                .iter_mut()
                .zip(row)
            {
                *s += v;
            }
        }
        part
    });

    let mut labels = Vec::with_capacity(n);
    let mut sums = vec![0.0; k * dim];
    let mut counts = vec![0usize; k];
    let mut inertia = 0.0;
    for part in partials {
        labels.extend_from_slice(&part.labels);
        for (acc, v) in sums.iter_mut().zip(&part.sums) {
            *acc += v;
        }
        for (acc, v) in counts.iter_mut().zip(&part.counts) {
            *acc += v;
        }
        inertia += part.inertia;
    }
    (labels, sums, counts, inertia)
}

#[inline]
fn centroid(centroids: &[f64], c: usize, dim: usize) -> &[f64] {
    &centroids[c * dim..(c + 1) * dim]
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length slices (the centroid
/// movement contribution).
fn diff_norm(a: &[f64], b: &[f64]) -> f64 {
    dist2(a, b).sqrt()
}

fn nearest_flat(row: &[f64], centroids: &[f64], dim: usize) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.chunks_exact(dim).enumerate() {
        let d = dist2(row, centroid);
        if d < best_d {
            best = c;
            best_d = d;
        }
    }
    (best, best_d)
}

/// k-means++ seeding: first centroid uniform, each next one sampled with
/// probability proportional to squared distance from the nearest chosen
/// centroid. Returns flat `k * dim` storage.
fn plus_plus_init<R: Rng + ?Sized>(rows: &Rows, k: usize, rng: &mut R) -> Vec<f64> {
    let dim = rows.dim();
    let mut centroids = Vec::with_capacity(k * dim);
    centroids.extend_from_slice(rows.row(rng.gen_range(0..rows.len())));
    let mut d2: Vec<f64> = rows.iter().map(|r| dist2(r, &centroids[..dim])).collect();
    while centroids.len() < k * dim {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with chosen centroids; any point works.
            rng.gen_range(0..rows.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut pick = rows.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            pick
        };
        centroids.extend_from_slice(rows.row(next));
        let newest = &centroids[centroids.len() - dim..];
        for (i, r) in rows.iter().enumerate() {
            let d = dist2(r, newest);
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated Gaussian-ish blobs on a line.
    fn blobs() -> Vec<Vec<f64>> {
        let mut rows = Vec::new();
        for (center, count) in [(0.0, 20), (10.0, 20), (20.0, 20)] {
            for i in 0..count {
                rows.push(vec![center + (i as f64) * 0.01, center]);
            }
        }
        rows
    }

    #[test]
    fn recovers_separated_blobs() {
        let model = KMeans::fit(&blobs(), KMeansConfig::new(3).with_seed(1)).unwrap();
        assert!(model.converged);
        let sizes = model.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 60);
        assert_eq!(sizes, vec![20, 20, 20]);
        // All members of each blob share a label.
        for blob in 0..3 {
            let first = model.labels[blob * 20];
            for i in 0..20 {
                assert_eq!(model.labels[blob * 20 + i], first);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = KMeans::fit(&blobs(), KMeansConfig::new(3).with_seed(7)).unwrap();
        let b = KMeans::fit(&blobs(), KMeansConfig::new(3).with_seed(7)).unwrap();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let rows = blobs();
        let i2 = KMeans::fit(&rows, KMeansConfig::new(2).with_seed(3))
            .unwrap()
            .inertia;
        let i3 = KMeans::fit(&rows, KMeansConfig::new(3).with_seed(3))
            .unwrap()
            .inertia;
        let i6 = KMeans::fit(&rows, KMeansConfig::new(6).with_seed(3))
            .unwrap()
            .inertia;
        assert!(i3 < i2);
        assert!(i6 <= i3);
    }

    #[test]
    fn k_equals_n_zero_inertia() {
        let rows = vec![vec![1.0, 0.0], vec![2.0, 0.0], vec![3.0, 0.0]];
        let model = KMeans::fit(&rows, KMeansConfig::new(3).with_seed(2)).unwrap();
        assert!(model.inertia < 1e-18);
        let mut labels = model.labels.clone();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn rejects_bad_input() {
        let rows = vec![vec![1.0], vec![2.0]];
        assert!(matches!(
            KMeans::fit(&rows, KMeansConfig::new(3)),
            Err(ClusterError::TooFewObservations { .. })
        ));
        assert!(matches!(
            KMeans::fit(&rows, KMeansConfig::new(0)),
            Err(ClusterError::InvalidParameter { .. })
        ));
        let ragged = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(matches!(
            KMeans::fit(&ragged, KMeansConfig::new(1)),
            Err(ClusterError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn identical_points_handled() {
        // Degenerate: all points equal, k = 2 (forces empty-cluster path
        // or zero-weight k-means++ fallback).
        let rows = vec![vec![5.0, 5.0]; 10];
        let model = KMeans::fit(&rows, KMeansConfig::new(2).with_seed(4)).unwrap();
        assert!(model.inertia < 1e-18);
        assert_eq!(model.labels.len(), 10);
    }

    #[test]
    fn predict_matches_fit_labels() {
        let rows = blobs();
        let model = KMeans::fit(&rows, KMeansConfig::new(3).with_seed(5)).unwrap();
        for (row, &label) in rows.iter().zip(&model.labels) {
            assert_eq!(model.predict(row), label);
        }
    }

    #[test]
    fn average_cluster_size() {
        let model = KMeans::fit(&blobs(), KMeansConfig::new(3).with_seed(6)).unwrap();
        assert!((model.average_cluster_size() - 20.0).abs() < 1e-12);
        assert_eq!(model.k(), 3);
    }

    #[test]
    fn fit_matches_fit_rows() {
        let vecs = blobs();
        let rows = Rows::from_vecs(&vecs).unwrap();
        let a = KMeans::fit(&vecs, KMeansConfig::new(3).with_seed(9)).unwrap();
        let b = KMeans::fit_rows(&rows, KMeansConfig::new(3).with_seed(9), 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fit_rows_bit_identical_across_thread_counts() {
        // Big enough for several ROW_CHUNK chunks so the parallel merge
        // path is actually exercised.
        let n = 3 * par::ROW_CHUNK + 123;
        let mut rows = Rows::new(2);
        for i in 0..n {
            let x = ((i * 2654435761) % 997) as f64 * 0.013;
            let y = ((i * 40503) % 1009) as f64 * 0.007;
            let shift = (i % 4) as f64 * 25.0;
            rows.push(&[x + shift, y + shift]).unwrap();
        }
        let config = KMeansConfig::new(4).with_seed(11);
        let base = KMeans::fit_rows(&rows, config, 1).unwrap();
        for threads in [2, 4, 0] {
            let model = KMeans::fit_rows(&rows, config, threads).unwrap();
            assert_eq!(base.labels, model.labels, "threads = {threads}");
            assert_eq!(
                base.inertia.to_bits(),
                model.inertia.to_bits(),
                "threads = {threads}"
            );
            for (a, b) in base.centroids.iter().zip(&model.centroids) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "threads = {threads}");
                }
            }
        }
    }
}
