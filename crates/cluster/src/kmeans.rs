//! K-Means with k-means++ seeding (Lloyd's algorithm).
//!
//! The paper clusters ~72k user attention vectors with K-Means and picks
//! `k = 12` by comparing inertia, average cluster size, and silhouette
//! coefficient (Fig. 7). This implementation is deterministic given the
//! seed, handles empty clusters by re-seeding them on the farthest
//! point, and reports inertia per iteration so convergence is testable.

use crate::{ClusterError, Result};
use donorpulse_linalg::{norm2, sub_vec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// K-Means configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence threshold on total centroid movement.
    pub tol: f64,
    /// RNG seed (k-means++ and empty-cluster reseeding).
    pub seed: u64,
}

impl KMeansConfig {
    /// A sensible default for the given `k`.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iter: 100,
            tol: 1e-7,
            seed: 0,
        }
    }

    /// Builder: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A fitted K-Means model.
///
/// ```
/// use donorpulse_cluster::{KMeans, KMeansConfig};
///
/// let rows = vec![
///     vec![0.0], vec![0.1], // one blob
///     vec![9.0], vec![9.1], // another
/// ];
/// let model = KMeans::fit(&rows, KMeansConfig::new(2).with_seed(1)).unwrap();
/// assert_eq!(model.labels[0], model.labels[1]);
/// assert_ne!(model.labels[0], model.labels[2]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    /// Final centroids (`k` rows).
    pub centroids: Vec<Vec<f64>>,
    /// Cluster label per observation.
    pub labels: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// True when the run converged before `max_iter`.
    pub converged: bool,
}

impl KMeans {
    /// Fits K-Means to `rows`.
    pub fn fit(rows: &[Vec<f64>], config: KMeansConfig) -> Result<KMeans> {
        let n = rows.len();
        if config.k == 0 {
            return Err(ClusterError::InvalidParameter {
                reason: "k must be positive".to_string(),
            });
        }
        if n < config.k {
            return Err(ClusterError::TooFewObservations {
                needed: config.k,
                got: n,
                what: "kmeans",
            });
        }
        let dim = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != dim {
                return Err(ClusterError::DimensionMismatch {
                    expected: dim,
                    got: r.len(),
                    row: i,
                });
            }
        }

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut centroids = plus_plus_init(rows, config.k, &mut rng);
        let mut labels = vec![0usize; n];
        let mut iterations = 0;
        let mut converged = false;

        for iter in 0..config.max_iter {
            iterations = iter + 1;
            // Assignment step.
            for (i, row) in rows.iter().enumerate() {
                let (label, _) = nearest(row, &centroids);
                labels[i] = label;
            }
            // Update step.
            let mut sums = vec![vec![0.0; dim]; config.k];
            let mut counts = vec![0usize; config.k];
            for (row, &label) in rows.iter().zip(&labels) {
                counts[label] += 1;
                for (s, v) in sums[label].iter_mut().zip(row) {
                    *s += v;
                }
            }
            let mut movement = 0.0;
            for c in 0..config.k {
                if counts[c] == 0 {
                    // Re-seed the empty cluster on the point farthest
                    // from its centroid.
                    let far = rows
                        .iter()
                        .enumerate()
                        .max_by(|(i, a), (j, b)| {
                            let da = dist2(a, &centroids[labels[*i]]);
                            let db = dist2(b, &centroids[labels[*j]]);
                            da.partial_cmp(&db).expect("finite distances")
                        })
                        .map(|(i, _)| i)
                        .expect("nonempty rows");
                    let new_c = rows[far].clone();
                    movement += norm2(&sub_vec(&new_c, &centroids[c]));
                    centroids[c] = new_c;
                    continue;
                }
                let new_c: Vec<f64> = sums[c]
                    .iter()
                    .map(|s| s / counts[c] as f64)
                    .collect();
                movement += norm2(&sub_vec(&new_c, &centroids[c]));
                centroids[c] = new_c;
            }
            if movement <= config.tol {
                converged = true;
                break;
            }
        }

        // Final assignment against the last centroids.
        let mut inertia = 0.0;
        for (i, row) in rows.iter().enumerate() {
            let (label, d2) = nearest(row, &centroids);
            labels[i] = label;
            inertia += d2;
        }

        Ok(KMeans {
            centroids,
            labels,
            inertia,
            iterations,
            converged,
        })
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Cluster sizes (indexed by label).
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Average cluster size.
    pub fn average_cluster_size(&self) -> f64 {
        self.labels.len() as f64 / self.k() as f64
    }

    /// Predicts the cluster of a new observation.
    pub fn predict(&self, row: &[f64]) -> usize {
        nearest(row, &self.centroids).0
    }
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn nearest(row: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = dist2(row, centroid);
        if d < best_d {
            best = c;
            best_d = d;
        }
    }
    (best, best_d)
}

/// k-means++ seeding: first centroid uniform, each next one sampled with
/// probability proportional to squared distance from the nearest chosen
/// centroid.
fn plus_plus_init<R: Rng + ?Sized>(rows: &[Vec<f64>], k: usize, rng: &mut R) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(rows[rng.gen_range(0..rows.len())].clone());
    let mut d2: Vec<f64> = rows
        .iter()
        .map(|r| dist2(r, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with chosen centroids; any point works.
            rng.gen_range(0..rows.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut pick = rows.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            pick
        };
        centroids.push(rows[next].clone());
        for (i, r) in rows.iter().enumerate() {
            let d = dist2(r, centroids.last().expect("nonempty"));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated Gaussian-ish blobs on a line.
    fn blobs() -> Vec<Vec<f64>> {
        let mut rows = Vec::new();
        for (center, count) in [(0.0, 20), (10.0, 20), (20.0, 20)] {
            for i in 0..count {
                rows.push(vec![center + (i as f64) * 0.01, center]);
            }
        }
        rows
    }

    #[test]
    fn recovers_separated_blobs() {
        let model = KMeans::fit(&blobs(), KMeansConfig::new(3).with_seed(1)).unwrap();
        assert!(model.converged);
        let sizes = model.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 60);
        assert_eq!(sizes, vec![20, 20, 20]);
        // All members of each blob share a label.
        for blob in 0..3 {
            let first = model.labels[blob * 20];
            for i in 0..20 {
                assert_eq!(model.labels[blob * 20 + i], first);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = KMeans::fit(&blobs(), KMeansConfig::new(3).with_seed(7)).unwrap();
        let b = KMeans::fit(&blobs(), KMeansConfig::new(3).with_seed(7)).unwrap();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let rows = blobs();
        let i2 = KMeans::fit(&rows, KMeansConfig::new(2).with_seed(3)).unwrap().inertia;
        let i3 = KMeans::fit(&rows, KMeansConfig::new(3).with_seed(3)).unwrap().inertia;
        let i6 = KMeans::fit(&rows, KMeansConfig::new(6).with_seed(3)).unwrap().inertia;
        assert!(i3 < i2);
        assert!(i6 <= i3);
    }

    #[test]
    fn k_equals_n_zero_inertia() {
        let rows = vec![vec![1.0, 0.0], vec![2.0, 0.0], vec![3.0, 0.0]];
        let model = KMeans::fit(&rows, KMeansConfig::new(3).with_seed(2)).unwrap();
        assert!(model.inertia < 1e-18);
        let mut labels = model.labels.clone();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn rejects_bad_input() {
        let rows = vec![vec![1.0], vec![2.0]];
        assert!(matches!(
            KMeans::fit(&rows, KMeansConfig::new(3)),
            Err(ClusterError::TooFewObservations { .. })
        ));
        assert!(matches!(
            KMeans::fit(&rows, KMeansConfig::new(0)),
            Err(ClusterError::InvalidParameter { .. })
        ));
        let ragged = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(matches!(
            KMeans::fit(&ragged, KMeansConfig::new(1)),
            Err(ClusterError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn identical_points_handled() {
        // Degenerate: all points equal, k = 2 (forces empty-cluster path
        // or zero-weight k-means++ fallback).
        let rows = vec![vec![5.0, 5.0]; 10];
        let model = KMeans::fit(&rows, KMeansConfig::new(2).with_seed(4)).unwrap();
        assert!(model.inertia < 1e-18);
        assert_eq!(model.labels.len(), 10);
    }

    #[test]
    fn predict_matches_fit_labels() {
        let rows = blobs();
        let model = KMeans::fit(&rows, KMeansConfig::new(3).with_seed(5)).unwrap();
        for (row, &label) in rows.iter().zip(&model.labels) {
            assert_eq!(model.predict(row), label);
        }
    }

    #[test]
    fn average_cluster_size() {
        let model = KMeans::fit(&blobs(), KMeansConfig::new(3).with_seed(6)).unwrap();
        assert!((model.average_cluster_size() - 20.0).abs() < 1e-12);
        assert_eq!(model.k(), 3);
    }
}
