//! Silhouette coefficient — the paper's K-Means model-selection score.
//!
//! For each observation `i` with intra-cluster mean distance `a(i)` and
//! smallest other-cluster mean distance `b(i)`, the silhouette is
//! `s(i) = (b − a) / max(a, b)`; the score is the mean over all
//! observations. Singleton clusters get `s(i) = 0` (scikit-learn
//! convention). The paper reports 0.953 at `k = 12`.
//!
//! The `O(n²)` pairwise loop runs on a contiguous [`Rows`] buffer and
//! parallelizes through [`crate::par`]'s fixed-order chunked reduction:
//! each chunk of observations computes its silhouette values
//! independently, and chunks are concatenated in index order, so scores
//! are bit-identical for any thread count.

use crate::metric::Metric;
use crate::par;
use crate::{ClusterError, Result};
use donorpulse_linalg::Rows;

/// Computes the mean silhouette coefficient of a labeling.
///
/// `O(n²)` pairwise distances — use [`sampled_silhouette_score`] for
/// large corpora. Compatibility wrapper over
/// [`silhouette_score_rows`]; runs single-threaded.
pub fn silhouette_score(rows: &[Vec<f64>], labels: &[usize], metric: Metric) -> Result<f64> {
    let packed = pack(rows, labels)?;
    silhouette_score_rows(&packed, labels, metric, 1)
}

/// Mean silhouette over a contiguous [`Rows`] buffer on up to
/// `threads` workers (`0` = all cores). Thread-count-invariant: the
/// per-observation values are summed in observation order regardless of
/// which worker computed them.
pub fn silhouette_score_rows(
    rows: &Rows,
    labels: &[usize],
    metric: Metric,
    threads: usize,
) -> Result<f64> {
    let samples = silhouette_samples_rows(rows, labels, metric, threads)?;
    Ok(samples.iter().sum::<f64>() / samples.len() as f64)
}

/// Per-observation silhouette values (same conventions as
/// [`silhouette_score`]; singletons get 0). Useful for diagnosing which
/// clusters are tight and which are smeared (sklearn's
/// `silhouette_samples`). Compatibility wrapper over
/// [`silhouette_samples_rows`]; runs single-threaded.
pub fn silhouette_samples(rows: &[Vec<f64>], labels: &[usize], metric: Metric) -> Result<Vec<f64>> {
    let packed = pack(rows, labels)?;
    silhouette_samples_rows(&packed, labels, metric, 1)
}

/// Per-observation silhouette values over a contiguous [`Rows`] buffer
/// on up to `threads` workers (`0` = all cores).
pub fn silhouette_samples_rows(
    rows: &Rows,
    labels: &[usize],
    metric: Metric,
    threads: usize,
) -> Result<Vec<f64>> {
    validate_rows(rows, labels)?;
    let n = rows.len();
    let k = labels.iter().max().map_or(0, |m| m + 1);
    if k < 2 {
        return Err(ClusterError::InvalidParameter {
            reason: "silhouette requires at least 2 clusters".to_string(),
        });
    }
    let sizes = {
        let mut s = vec![0usize; k];
        for &l in labels {
            s[l] += 1;
        }
        s
    };

    let partials = par::map_chunks(n, par::SIL_CHUNK, threads, |_, range| -> Result<Vec<f64>> {
        let mut part = Vec::with_capacity(range.len());
        for i in range {
            let row_i = rows.row(i);
            // Mean distance from i to every cluster.
            let mut sums = vec![0.0; k];
            for j in 0..n {
                if i != j {
                    sums[labels[j]] += metric.distance(row_i, rows.row(j))?;
                }
            }
            let own = labels[i];
            if sizes[own] <= 1 {
                part.push(0.0); // singleton: s(i) = 0
                continue;
            }
            let a = sums[own] / (sizes[own] - 1) as f64;
            let b = (0..k)
                .filter(|&c| c != own && sizes[c] > 0)
                .map(|c| sums[c] / sizes[c] as f64)
                .fold(f64::INFINITY, f64::min);
            let denom = a.max(b);
            if b.is_finite() && denom > 0.0 {
                part.push((b - a) / denom);
            } else {
                part.push(0.0);
            }
        }
        Ok(part)
    });

    let mut out = Vec::with_capacity(n);
    for part in partials {
        out.extend_from_slice(&part?);
    }
    Ok(out)
}

/// Mean silhouette per cluster — the per-panel quality readout for
/// Fig. 7-style displays.
pub fn per_cluster_silhouette(
    rows: &[Vec<f64>],
    labels: &[usize],
    metric: Metric,
) -> Result<Vec<f64>> {
    let samples = silhouette_samples(rows, labels, metric)?;
    let k = labels.iter().max().map_or(0, |m| m + 1);
    let mut sums = vec![0.0; k];
    let mut counts = vec![0usize; k];
    for (&l, &s) in labels.iter().zip(&samples) {
        sums[l] += s;
        counts[l] += 1;
    }
    Ok(sums
        .into_iter()
        .zip(counts)
        .map(|(s, c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect())
}

/// Silhouette over a deterministic subsample of at most `max_n`
/// observations (stride sampling) — the standard trick for scoring
/// 72k-user labelings where `O(n²)` is prohibitive. Compatibility
/// wrapper over [`sampled_silhouette_score_rows`]; runs
/// single-threaded.
pub fn sampled_silhouette_score(
    rows: &[Vec<f64>],
    labels: &[usize],
    metric: Metric,
    max_n: usize,
) -> Result<f64> {
    let packed = pack(rows, labels)?;
    sampled_silhouette_score_rows(&packed, labels, metric, max_n, 1)
}

/// Sampled silhouette over a contiguous [`Rows`] buffer on up to
/// `threads` workers (`0` = all cores).
///
/// The labeling must cover the full buffer: a `labels` slice whose
/// length differs from `rows.len()` is an error even when the stride
/// subsample alone could be indexed — scoring a mismatched labeling
/// silently would hide an upstream bug.
pub fn sampled_silhouette_score_rows(
    rows: &Rows,
    labels: &[usize],
    metric: Metric,
    max_n: usize,
    threads: usize,
) -> Result<f64> {
    validate_rows(rows, labels)?;
    if max_n == 0 {
        return Err(ClusterError::InvalidParameter {
            reason: "max_n must be positive".to_string(),
        });
    }
    if rows.len() <= max_n {
        return silhouette_score_rows(rows, labels, metric, threads);
    }
    let stride = rows.len().div_ceil(max_n);
    let idx: Vec<usize> = (0..rows.len()).step_by(stride).collect();
    let sub_rows = rows.subset(&idx);
    let sub_labels_raw: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
    // Compact labels: the subsample may miss some clusters entirely.
    let mut remap = std::collections::HashMap::new();
    let sub_labels: Vec<usize> = sub_labels_raw
        .iter()
        .map(|&l| {
            let next = remap.len();
            *remap.entry(l).or_insert(next)
        })
        .collect();
    silhouette_score_rows(&sub_rows, &sub_labels, metric, threads)
}

/// Validates a `(rows, labels)` pairing on the contiguous buffer.
fn validate_rows(rows: &Rows, labels: &[usize]) -> Result<()> {
    if rows.len() != labels.len() {
        return Err(ClusterError::InvalidParameter {
            reason: format!(
                "rows ({}) and labels ({}) differ in length",
                rows.len(),
                labels.len()
            ),
        });
    }
    if rows.len() < 2 {
        return Err(ClusterError::TooFewObservations {
            needed: 2,
            got: rows.len(),
            what: "silhouette",
        });
    }
    Ok(())
}

/// Validates the legacy `Vec<Vec<f64>>` input and packs it into a
/// contiguous buffer, preserving the historical error variants.
fn pack(rows: &[Vec<f64>], labels: &[usize]) -> Result<Rows> {
    if rows.len() != labels.len() {
        return Err(ClusterError::InvalidParameter {
            reason: format!(
                "rows ({}) and labels ({}) differ in length",
                rows.len(),
                labels.len()
            ),
        });
    }
    if rows.len() < 2 {
        return Err(ClusterError::TooFewObservations {
            needed: 2,
            got: rows.len(),
            what: "silhouette",
        });
    }
    let dim = rows[0].len();
    for (i, r) in rows.iter().enumerate() {
        if r.len() != dim {
            return Err(ClusterError::DimensionMismatch {
                expected: dim,
                got: r.len(),
                row: i,
            });
        }
    }
    Rows::from_vecs(rows).map_err(|e| ClusterError::InvalidParameter {
        reason: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            rows.push(vec![0.0 + i as f64 * 0.01]);
            labels.push(0);
        }
        for i in 0..10 {
            rows.push(vec![100.0 + i as f64 * 0.01]);
            labels.push(1);
        }
        (rows, labels)
    }

    #[test]
    fn well_separated_blobs_score_near_one() {
        let (rows, labels) = two_blobs();
        let s = silhouette_score(&rows, &labels, Metric::Euclidean).unwrap();
        assert!(s > 0.99, "score {s}");
    }

    #[test]
    fn random_labels_score_poorly() {
        let (rows, _) = two_blobs();
        // Alternate labels across both blobs — a terrible clustering.
        let bad: Vec<usize> = (0..rows.len()).map(|i| i % 2).collect();
        let s = silhouette_score(&rows, &bad, Metric::Euclidean).unwrap();
        assert!(s < 0.1, "score {s}");
    }

    #[test]
    fn score_bounded() {
        let (rows, labels) = two_blobs();
        let s = silhouette_score(&rows, &labels, Metric::Euclidean).unwrap();
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn singleton_cluster_contributes_zero() {
        let rows = vec![vec![0.0], vec![0.1], vec![50.0]];
        let labels = vec![0, 0, 1];
        let s = silhouette_score(&rows, &labels, Metric::Euclidean).unwrap();
        // Cluster 1 is a singleton (s = 0); the other two are tight and
        // far from cluster 1, so the mean is (s0 + s1 + 0) / 3 ≈ 2/3·1.
        assert!(s > 0.6, "score {s}");
    }

    #[test]
    fn singleton_sample_is_exactly_zero() {
        // Regression: the singleton convention is s(i) = 0 exactly, not
        // merely "small" — the sample must come back as literal 0.0.
        let rows = vec![vec![0.0], vec![0.1], vec![50.0]];
        let labels = vec![0, 0, 1];
        let samples = silhouette_samples(&rows, &labels, Metric::Euclidean).unwrap();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[2].to_bits(), 0.0_f64.to_bits());
        assert!(samples[0] > 0.9 && samples[1] > 0.9);
    }

    #[test]
    fn single_cluster_rejected() {
        let rows = vec![vec![0.0], vec![1.0]];
        assert!(silhouette_score(&rows, &[0, 0], Metric::Euclidean).is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        let rows = vec![vec![0.0], vec![1.0]];
        assert!(silhouette_score(&rows, &[0], Metric::Euclidean).is_err());
        assert!(silhouette_score(&[], &[], Metric::Euclidean).is_err());
    }

    #[test]
    fn sampled_path_rejects_length_mismatch() {
        // Regression: a labels slice long enough to index the stride
        // subsample must still be rejected — never silently scored.
        let mut rows = Vec::new();
        for i in 0..50 {
            rows.push(vec![i as f64]);
        }
        let short_labels: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let err = sampled_silhouette_score(&rows, &short_labels, Metric::Euclidean, 10);
        assert!(matches!(err, Err(ClusterError::InvalidParameter { .. })));

        let packed = Rows::from_vecs(&rows).unwrap();
        let err = sampled_silhouette_score_rows(&packed, &short_labels, Metric::Euclidean, 10, 1);
        assert!(matches!(err, Err(ClusterError::InvalidParameter { .. })));
    }

    #[test]
    fn samples_mean_equals_score() {
        let (rows, labels) = two_blobs();
        let samples = silhouette_samples(&rows, &labels, Metric::Euclidean).unwrap();
        let score = silhouette_score(&rows, &labels, Metric::Euclidean).unwrap();
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - score).abs() < 1e-12);
        assert!(samples.iter().all(|s| (-1.0..=1.0).contains(s)));
    }

    #[test]
    fn per_cluster_breakdown() {
        let (rows, labels) = two_blobs();
        let per = per_cluster_silhouette(&rows, &labels, Metric::Euclidean).unwrap();
        assert_eq!(per.len(), 2);
        assert!(per.iter().all(|&s| s > 0.99), "{per:?}");
    }

    #[test]
    fn sampled_matches_full_on_small_input() {
        let (rows, labels) = two_blobs();
        let full = silhouette_score(&rows, &labels, Metric::Euclidean).unwrap();
        let sampled = sampled_silhouette_score(&rows, &labels, Metric::Euclidean, 1000).unwrap();
        assert_eq!(full, sampled);
    }

    #[test]
    fn sampled_close_to_full_on_larger_input() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..4 {
            for i in 0..100 {
                rows.push(vec![c as f64 * 50.0 + (i % 10) as f64 * 0.1]);
                labels.push(c);
            }
        }
        let full = silhouette_score(&rows, &labels, Metric::Euclidean).unwrap();
        let sampled = sampled_silhouette_score(&rows, &labels, Metric::Euclidean, 100).unwrap();
        assert!(
            (full - sampled).abs() < 0.05,
            "full {full}, sampled {sampled}"
        );
        assert!(sampled_silhouette_score(&rows, &labels, Metric::Euclidean, 0).is_err());
    }

    #[test]
    fn score_bit_identical_across_thread_counts() {
        // Span several SIL_CHUNK chunks so the parallel merge actually
        // runs, with irregular values so FP association would show.
        let n = 3 * par::SIL_CHUNK + 17;
        let mut rows = Rows::new(2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let cluster = i % 3;
            let x = cluster as f64 * 10.0 + ((i * 37) % 101) as f64 * 0.01;
            let y = cluster as f64 * 10.0 + ((i * 53) % 97) as f64 * 0.01;
            rows.push(&[x, y]).unwrap();
            labels.push(cluster);
        }
        let base = silhouette_score_rows(&rows, &labels, Metric::Euclidean, 1).unwrap();
        for threads in [2, 4, 0] {
            let s = silhouette_score_rows(&rows, &labels, Metric::Euclidean, threads).unwrap();
            assert_eq!(base.to_bits(), s.to_bits(), "threads = {threads}");
        }
    }
}
