//! Distance metrics and the pairwise distance matrix.

use crate::par;
use crate::{ClusterError, Result};
use donorpulse_linalg::Rows;
use donorpulse_stats::distance;
use serde::{Deserialize, Serialize};

/// Affinity/distance metric for clustering.
///
/// The paper uses [`Metric::Bhattacharyya`] for state clustering because
/// rows of `K` are discrete probability distributions; the others back
/// the ablation bench that re-runs Fig. 6 under different affinities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Bhattacharyya distance `−ln Σ√(pᵢqᵢ)` (the paper's choice).
    Bhattacharyya,
    /// Hellinger distance (bounded metric relative of Bhattacharyya).
    Hellinger,
    /// Euclidean (L2).
    Euclidean,
    /// Manhattan (L1).
    Manhattan,
    /// Cosine distance.
    Cosine,
    /// Jensen–Shannon divergence.
    JensenShannon,
}

impl Metric {
    /// Distance between two vectors under this metric.
    pub fn distance(self, a: &[f64], b: &[f64]) -> Result<f64> {
        let d = match self {
            Metric::Bhattacharyya => distance::bhattacharyya(a, b)?,
            Metric::Hellinger => distance::hellinger(a, b)?,
            Metric::Euclidean => distance::euclidean(a, b)?,
            Metric::Manhattan => distance::manhattan(a, b)?,
            Metric::Cosine => distance::cosine(a, b)?,
            Metric::JensenShannon => distance::js_divergence(a, b)?,
        };
        Ok(d)
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Bhattacharyya => "bhattacharyya",
            Metric::Hellinger => "hellinger",
            Metric::Euclidean => "euclidean",
            Metric::Manhattan => "manhattan",
            Metric::Cosine => "cosine",
            Metric::JensenShannon => "jensen-shannon",
        }
    }
}

/// A symmetric pairwise distance matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceMatrix {
    n: usize,
    /// Full row-major storage (kept simple; n is small for states).
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Computes all pairwise distances between `rows` under `metric`.
    ///
    /// Infinite distances (possible under Bhattacharyya for disjoint
    /// supports) are replaced by twice the largest finite distance so
    /// downstream linkage arithmetic stays finite while disjoint pairs
    /// still merge last.
    pub fn compute(rows: &[Vec<f64>], metric: Metric) -> Result<Self> {
        let n = rows.len();
        if n == 0 {
            return Err(ClusterError::TooFewObservations {
                needed: 1,
                got: 0,
                what: "distance matrix",
            });
        }
        let dim = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != dim {
                return Err(ClusterError::DimensionMismatch {
                    expected: dim,
                    got: r.len(),
                    row: i,
                });
            }
        }
        let packed = Rows::from_vecs(rows).map_err(|e| ClusterError::InvalidParameter {
            reason: e.to_string(),
        })?;
        Self::compute_rows(&packed, metric, 1)
    }

    /// Computes all pairwise distances over a contiguous [`Rows`] buffer
    /// on up to `threads` workers (`0` = all cores).
    ///
    /// The upper triangle is chunked over linear pair indices
    /// ([`par::PAIR_CHUNK`] pairs per chunk); each pair is evaluated
    /// exactly once and mirrored, so even metrics whose floating-point
    /// evaluation is not bitwise symmetric (Jensen–Shannon accumulates
    /// terms in argument order) yield a bitwise-symmetric matrix that is
    /// identical for any thread count. Infinity capping follows
    /// [`DistanceMatrix::compute`].
    pub fn compute_rows(rows: &Rows, metric: Metric, threads: usize) -> Result<Self> {
        let n = rows.len();
        if n == 0 {
            return Err(ClusterError::TooFewObservations {
                needed: 1,
                got: 0,
                what: "distance matrix",
            });
        }
        let total_pairs = n * (n - 1) / 2;
        let partials = par::map_chunks(
            total_pairs,
            par::PAIR_CHUNK,
            threads,
            |_, range| -> Result<Vec<f64>> {
                // Decode the chunk's first linear pair index into (i, j).
                let mut rem = range.start;
                let mut i = 0usize;
                let mut row_pairs = n - 1;
                while row_pairs > 0 && rem >= row_pairs {
                    rem -= row_pairs;
                    i += 1;
                    row_pairs = n - 1 - i;
                }
                let mut j = i + 1 + rem;
                let mut out = Vec::with_capacity(range.len());
                for _ in range {
                    out.push(metric.distance(rows.row(i), rows.row(j))?);
                    j += 1;
                    if j == n {
                        i += 1;
                        j = i + 1;
                    }
                }
                Ok(out)
            },
        );

        let mut data = vec![0.0; n * n];
        let mut max_finite = 0.0_f64;
        let mut i = 0usize;
        let mut j = 1usize;
        for part in partials {
            for d in part? {
                data[i * n + j] = d;
                data[j * n + i] = d;
                if d.is_finite() {
                    max_finite = max_finite.max(d);
                }
                j += 1;
                if j == n {
                    i += 1;
                    j = i + 1;
                }
            }
        }
        let cap = if max_finite > 0.0 {
            2.0 * max_finite
        } else {
            1.0
        };
        for d in &mut data {
            if !d.is_finite() {
                *d = cap;
            }
        }
        Ok(Self { n, data })
    }

    /// Builds directly from a precomputed full matrix (must be square).
    pub fn from_full(n: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != n * n {
            return Err(ClusterError::InvalidParameter {
                reason: format!("expected {n}x{n} entries, got {}", data.len()),
            });
        }
        Ok(Self { n, data })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between observations `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n);
        self.data[i * self.n + j]
    }

    /// The largest pairwise distance.
    pub fn max(&self) -> f64 {
        self.data.iter().cloned().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<f64>> {
        vec![
            vec![0.8, 0.1, 0.1],
            vec![0.7, 0.2, 0.1],
            vec![0.1, 0.1, 0.8],
        ]
    }

    #[test]
    fn metric_distances_sane() {
        for m in [
            Metric::Bhattacharyya,
            Metric::Hellinger,
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::Cosine,
            Metric::JensenShannon,
        ] {
            let r = rows();
            let near = m.distance(&r[0], &r[1]).unwrap();
            let far = m.distance(&r[0], &r[2]).unwrap();
            assert!(near < far, "{}: near {near} !< far {far}", m.name());
            assert!(m.distance(&r[0], &r[0]).unwrap() < 1e-7);
        }
    }

    #[test]
    fn matrix_is_symmetric_zero_diagonal() {
        let dm = DistanceMatrix::compute(&rows(), Metric::Euclidean).unwrap();
        assert_eq!(dm.len(), 3);
        assert!(!dm.is_empty());
        for i in 0..3 {
            assert_eq!(dm.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(dm.get(i, j), dm.get(j, i));
            }
        }
        assert!(dm.max() > 0.0);
    }

    #[test]
    fn infinite_bhattacharyya_capped() {
        let rows = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5]];
        let dm = DistanceMatrix::compute(&rows, Metric::Bhattacharyya).unwrap();
        assert!(dm.get(0, 1).is_finite());
        // Disjoint pair remains the farthest.
        assert!(dm.get(0, 1) > dm.get(0, 2));
        assert!(dm.get(0, 1) > dm.get(1, 2));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(DistanceMatrix::compute(&[], Metric::Euclidean).is_err());
        let ragged = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(matches!(
            DistanceMatrix::compute(&ragged, Metric::Euclidean),
            Err(ClusterError::DimensionMismatch { row: 1, .. })
        ));
        assert!(DistanceMatrix::from_full(2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn from_full_round_trip() {
        let dm = DistanceMatrix::from_full(2, vec![0.0, 3.0, 3.0, 0.0]).unwrap();
        assert_eq!(dm.get(0, 1), 3.0);
    }

    #[test]
    fn compute_rows_matches_compute() {
        let vecs = rows();
        let packed = Rows::from_vecs(&vecs).unwrap();
        let a = DistanceMatrix::compute(&vecs, Metric::Bhattacharyya).unwrap();
        let b = DistanceMatrix::compute_rows(&packed, Metric::Bhattacharyya, 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn compute_rows_bit_identical_across_thread_counts() {
        // More pairs than one PAIR_CHUNK so the parallel path divides
        // the triangle; JS divergence is the metric most sensitive to
        // evaluation order.
        let n = 120; // 7140 pairs
        let mut packed = Rows::new(3);
        for i in 0..n {
            let a = 1.0 + ((i * 7) % 13) as f64;
            let b = 1.0 + ((i * 11) % 17) as f64;
            let c = 1.0 + ((i * 3) % 5) as f64;
            let total = a + b + c;
            packed.push(&[a / total, b / total, c / total]).unwrap();
        }
        let base = DistanceMatrix::compute_rows(&packed, Metric::JensenShannon, 1).unwrap();
        for threads in [2, 4, 0] {
            let dm = DistanceMatrix::compute_rows(&packed, Metric::JensenShannon, threads).unwrap();
            assert_eq!(base, dm, "threads = {threads}");
        }
        // Mirroring makes the matrix bitwise symmetric by construction.
        for i in 0..n {
            for j in 0..n {
                assert_eq!(base.get(i, j).to_bits(), base.get(j, i).to_bits());
            }
        }
    }
}
