//! Agglomerative hierarchical clustering (scipy-compatible linkage).
//!
//! The classic bottom-up algorithm: start with every observation as its
//! own cluster, repeatedly merge the closest pair, and update distances
//! with the Lance–Williams formula of the chosen linkage. The output is
//! a [`Dendrogram`] whose merge list follows scipy's `linkage`
//! convention (leaves `0..n`, the `i`-th merge creates cluster `n + i`).
//!
//! Complexity is the straightforward `O(n³)` — the paper clusters 52
//! states, and even a few thousand observations finish quickly.

use crate::dendrogram::{Dendrogram, Merge};
use crate::metric::{DistanceMatrix, Metric};
use crate::{ClusterError, Result};
use donorpulse_linalg::Rows;
use serde::{Deserialize, Serialize};

/// Linkage criterion (Lance–Williams family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Linkage {
    /// Minimum pairwise distance between members.
    Single,
    /// Maximum pairwise distance between members.
    Complete,
    /// Unweighted average pairwise distance (UPGMA) — what
    /// scikit-learn's `AgglomerativeClustering(affinity=…)` computes and
    /// therefore our Fig. 6 default.
    Average,
    /// Ward's minimum-variance criterion (meaningful for Euclidean
    /// input distances).
    Ward,
}

impl Linkage {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Linkage::Single => "single",
            Linkage::Complete => "complete",
            Linkage::Average => "average",
            Linkage::Ward => "ward",
        }
    }
}

/// Clusters `rows` under `metric`/`linkage`, returning the dendrogram.
pub fn agglomerative(rows: &[Vec<f64>], metric: Metric, linkage: Linkage) -> Result<Dendrogram> {
    let dm = DistanceMatrix::compute(rows, metric)?;
    agglomerative_from_distances(&dm, linkage)
}

/// Clusters a contiguous [`Rows`] buffer, computing the distance matrix
/// on up to `threads` workers (`0` = all cores). The linkage loop
/// itself stays serial — it is `O(n²)` per merge on an `n ≤ 52`-state
/// matrix — so the dendrogram is identical for any thread count.
pub fn agglomerative_rows(
    rows: &Rows,
    metric: Metric,
    linkage: Linkage,
    threads: usize,
) -> Result<Dendrogram> {
    let dm = DistanceMatrix::compute_rows(rows, metric, threads)?;
    agglomerative_from_distances(&dm, linkage)
}

/// Clusters from a precomputed distance matrix.
pub fn agglomerative_from_distances(dm: &DistanceMatrix, linkage: Linkage) -> Result<Dendrogram> {
    let n = dm.len();
    if n < 2 {
        return Err(ClusterError::TooFewObservations {
            needed: 2,
            got: n,
            what: "agglomerative clustering",
        });
    }

    // Working copy of the distance matrix (flat row-major, matching the
    // source); `active[i]` marks live clusters, `id[i]` the scipy-style
    // cluster id in slot i, `size[i]` the member count.
    let mut dist: Vec<f64> = (0..n * n).map(|idx| dm.get(idx / n, idx % n)).collect();
    let mut active: Vec<bool> = vec![true; n];
    let mut id: Vec<usize> = (0..n).collect();
    let mut size: Vec<f64> = vec![1.0; n];
    let mut merges = Vec::with_capacity(n - 1);

    for step in 0..(n - 1) {
        // Find the closest active pair.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            if !active[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !active[j] {
                    continue;
                }
                let d = dist[i * n + j];
                if best.map_or(true, |(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let (a, b, height) = best.expect("at least two active clusters");

        merges.push(Merge {
            left: id[a].min(id[b]),
            right: id[a].max(id[b]),
            height,
            size: (size[a] + size[b]) as usize,
        });

        // Lance–Williams update: slot `a` becomes the merged cluster.
        let (na, nb) = (size[a], size[b]);
        for k in 0..n {
            if !active[k] || k == a || k == b {
                continue;
            }
            let dka = dist[k * n + a];
            let dkb = dist[k * n + b];
            let nk = size[k];
            let updated = match linkage {
                Linkage::Single => dka.min(dkb),
                Linkage::Complete => dka.max(dkb),
                Linkage::Average => (na * dka + nb * dkb) / (na + nb),
                Linkage::Ward => {
                    let total = na + nb + nk;
                    (((na + nk) * dka * dka + (nb + nk) * dkb * dkb - nk * height * height) / total)
                        .max(0.0)
                        .sqrt()
                }
            };
            dist[k * n + a] = updated;
            dist[a * n + k] = updated;
        }
        active[b] = false;
        size[a] += size[b];
        id[a] = n + step;
    }

    Dendrogram::new(n, merges)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight pairs far apart: (0,1) close, (2,3) close.
    fn two_pairs() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![0.0, 0.1],
            vec![10.0, 10.0],
            vec![10.0, 10.1],
        ]
    }

    #[test]
    fn merges_obvious_pairs_first() {
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let d = agglomerative(&two_pairs(), Metric::Euclidean, linkage).unwrap();
            let m = d.merges();
            assert_eq!(m.len(), 3, "{}", linkage.name());
            // First two merges join the tight pairs (order between the
            // two pairs is tie-dependent but both must appear).
            let first_two: Vec<(usize, usize)> = m[..2].iter().map(|x| (x.left, x.right)).collect();
            assert!(first_two.contains(&(0, 1)), "{}", linkage.name());
            assert!(first_two.contains(&(2, 3)), "{}", linkage.name());
            // Final merge joins everything.
            assert_eq!(m[2].size, 4);
        }
    }

    #[test]
    fn cut_recovers_planted_clusters() {
        let d = agglomerative(&two_pairs(), Metric::Euclidean, Linkage::Average).unwrap();
        let labels = d.cut(2).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn single_vs_complete_chain_effect() {
        // A chain of points: single linkage chains them into one early;
        // complete linkage resists. Verify heights differ as expected.
        let chain: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64, 0.0]).collect();
        let single = agglomerative(&chain, Metric::Euclidean, Linkage::Single).unwrap();
        let complete = agglomerative(&chain, Metric::Euclidean, Linkage::Complete).unwrap();
        let single_max = single
            .merges()
            .iter()
            .map(|m| m.height)
            .fold(0.0_f64, f64::max);
        let complete_max = complete
            .merges()
            .iter()
            .map(|m| m.height)
            .fold(0.0_f64, f64::max);
        assert!((single_max - 1.0).abs() < 1e-12, "single max {single_max}");
        assert!(
            (complete_max - 5.0).abs() < 1e-12,
            "complete max {complete_max}"
        );
    }

    #[test]
    fn average_linkage_heights_monotone() {
        // Average linkage is reducible: merge heights never decrease.
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![(i * i) as f64 * 0.1, (i % 3) as f64])
            .collect();
        let d = agglomerative(&rows, Metric::Euclidean, Linkage::Average).unwrap();
        for pair in d.merges().windows(2) {
            assert!(pair[0].height <= pair[1].height + 1e-12);
        }
    }

    #[test]
    fn works_with_bhattacharyya_on_distributions() {
        let rows = vec![
            vec![0.9, 0.05, 0.05],
            vec![0.85, 0.1, 0.05],
            vec![0.05, 0.9, 0.05],
            vec![0.1, 0.85, 0.05],
        ];
        let d = agglomerative(&rows, Metric::Bhattacharyya, Linkage::Average).unwrap();
        let labels = d.cut(2).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn too_few_observations_rejected() {
        assert!(agglomerative(&[vec![1.0]], Metric::Euclidean, Linkage::Average).is_err());
        assert!(agglomerative(&[], Metric::Euclidean, Linkage::Average).is_err());
    }

    #[test]
    fn rows_path_matches_slice_path_for_any_thread_count() {
        let vecs = two_pairs();
        let packed = Rows::from_vecs(&vecs).unwrap();
        let base = agglomerative(&vecs, Metric::Euclidean, Linkage::Average).unwrap();
        for threads in [1, 2, 4, 0] {
            let d =
                agglomerative_rows(&packed, Metric::Euclidean, Linkage::Average, threads).unwrap();
            assert_eq!(base.merges(), d.merges(), "threads = {threads}");
        }
    }

    #[test]
    fn scipy_id_convention() {
        let d = agglomerative(&two_pairs(), Metric::Euclidean, Linkage::Average).unwrap();
        let m = d.merges();
        // The last merge joins the two internal clusters 4 and 5.
        assert_eq!((m[2].left, m[2].right), (4, 5));
    }
}
