//! Plain-text rendering of dendrograms and similarity matrices — the
//! textual equivalent of Fig. 6's heatmap-plus-dendrogram plot.

use crate::dendrogram::Dendrogram;
use crate::metric::DistanceMatrix;

/// Renders a dendrogram as indented text: each merge prints its height,
/// leaves are labeled via `label`. Suited to small trees (the 52 states).
///
/// ```text
/// ┬ 0.412
/// ├─┬ 0.031
/// │ ├ KS
/// │ └ LA
/// └─┬ 0.027
///   ├ DE
///   └ RI
/// ```
pub fn render_dendrogram(dendrogram: &Dendrogram, label: impl Fn(usize) -> String) -> String {
    let n = dendrogram.len();
    if n == 1 {
        return format!("─ {}\n", label(0));
    }
    let root = n + dendrogram.merges().len() - 1;
    let mut out = String::new();
    render_node(dendrogram, root, "", true, true, &label, &mut out);
    out
}

fn render_node(
    d: &Dendrogram,
    node: usize,
    prefix: &str,
    is_last: bool,
    is_root: bool,
    label: &impl Fn(usize) -> String,
    out: &mut String,
) {
    let connector = if is_root {
        ""
    } else if is_last {
        "└ "
    } else {
        "├ "
    };
    let n = d.len();
    if node < n {
        out.push_str(prefix);
        out.push_str(connector);
        out.push_str(&label(node));
        out.push('\n');
        return;
    }
    let merge = &d.merges()[node - n];
    out.push_str(prefix);
    out.push_str(connector);
    out.push_str(&format!("┬ {:.3}\n", merge.height));
    let child_prefix = if is_root {
        prefix.to_string()
    } else if is_last {
        format!("{prefix}  ")
    } else {
        format!("{prefix}│ ")
    };
    render_node(d, merge.left, &child_prefix, false, false, label, out);
    render_node(d, merge.right, &child_prefix, true, false, label, out);
}

/// Renders a similarity/distance matrix in dendrogram leaf order as a
/// shaded character heatmap (dark = close, light = far), with labels.
pub fn render_heatmap(
    distances: &DistanceMatrix,
    order: &[usize],
    label: impl Fn(usize) -> String,
) -> String {
    const SHADES: [char; 5] = ['█', '▓', '▒', '░', ' '];
    let max = distances.max().max(f64::MIN_POSITIVE);
    let mut out = String::new();
    for &i in order {
        let name = label(i);
        out.push_str(&format!("{name:>4} "));
        for &j in order {
            let d = distances.get(i, j);
            let bucket = ((d / max) * (SHADES.len() as f64 - 1.0)).round() as usize;
            out.push(SHADES[bucket.min(SHADES.len() - 1)]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agglomerative::{agglomerative, Linkage};
    use crate::metric::Metric;

    fn two_pairs() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![0.0, 0.1],
            vec![10.0, 10.0],
            vec![10.0, 10.1],
        ]
    }

    #[test]
    fn dendrogram_rendering_contains_all_leaves() {
        let d = agglomerative(&two_pairs(), Metric::Euclidean, Linkage::Average).unwrap();
        let text = render_dendrogram(&d, |i| format!("L{i}"));
        for i in 0..4 {
            assert!(text.contains(&format!("L{i}")), "{text}");
        }
        // Three merges -> three height lines.
        assert_eq!(text.matches('┬').count(), 3, "{text}");
    }

    #[test]
    fn dendrogram_heights_printed() {
        let d = agglomerative(&two_pairs(), Metric::Euclidean, Linkage::Average).unwrap();
        let text = render_dendrogram(&d, |i| i.to_string());
        assert!(text.contains("0.100"), "{text}"); // the tight-pair height
    }

    #[test]
    fn single_leaf_render() {
        let d = Dendrogram::new(1, vec![]).unwrap();
        assert_eq!(render_dendrogram(&d, |_| "only".into()), "─ only\n");
    }

    #[test]
    fn heatmap_diagonal_is_darkest() {
        let dm = DistanceMatrix::compute(&two_pairs(), Metric::Euclidean).unwrap();
        let text = render_heatmap(&dm, &[0, 1, 2, 3], |i| format!("{i}"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // First cell of the first row is the self-distance: darkest shade.
        assert!(lines[0].contains('█'));
        // Far pair renders light.
        assert!(lines[0].ends_with(' ') || lines[0].contains('░'), "{text}");
    }

    #[test]
    fn heatmap_respects_order() {
        let dm = DistanceMatrix::compute(&two_pairs(), Metric::Euclidean).unwrap();
        let a = render_heatmap(&dm, &[0, 1, 2, 3], |i| format!("x{i}"));
        let b = render_heatmap(&dm, &[3, 2, 1, 0], |i| format!("x{i}"));
        assert!(a.starts_with("  x0"));
        assert!(b.starts_with("  x3"));
    }
}
