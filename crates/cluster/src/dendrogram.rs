//! The merge tree produced by agglomerative clustering.

use crate::{ClusterError, Result};
use serde::{Deserialize, Serialize};

/// One merge step (scipy `linkage` row): clusters `left` and `right`
/// (ids `< n` are leaves, `>= n` are earlier merges) join at `height`
/// into a cluster of `size` members.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// Smaller cluster id of the pair.
    pub left: usize,
    /// Larger cluster id of the pair.
    pub right: usize,
    /// Linkage distance at which the merge happens.
    pub height: f64,
    /// Number of leaves in the merged cluster.
    pub size: usize,
}

/// A full merge tree over `n` observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Wraps a merge list; validates the scipy id convention.
    pub fn new(n: usize, merges: Vec<Merge>) -> Result<Self> {
        if merges.len() != n.saturating_sub(1) {
            return Err(ClusterError::InvalidParameter {
                reason: format!(
                    "expected {} merges for {n} leaves, got {}",
                    n - 1,
                    merges.len()
                ),
            });
        }
        for (i, m) in merges.iter().enumerate() {
            let max_id = n + i;
            if m.left >= max_id || m.right >= max_id || m.left == m.right {
                return Err(ClusterError::InvalidParameter {
                    reason: format!("merge {i} references invalid cluster ids"),
                });
            }
        }
        Ok(Self { n, merges })
    }

    /// Number of leaf observations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the tree is over zero observations.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The merge list in merge order.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the tree into exactly `k` clusters, returning a label per
    /// leaf in `0..k` (labels are assigned in order of first appearance).
    pub fn cut(&self, k: usize) -> Result<Vec<usize>> {
        if k == 0 || k > self.n {
            return Err(ClusterError::InvalidParameter {
                reason: format!("cannot cut {} leaves into {k} clusters", self.n),
            });
        }
        // Apply the first n - k merges with union-find.
        let mut parent: Vec<usize> = (0..(2 * self.n - 1)).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for (i, m) in self.merges.iter().take(self.n - k).enumerate() {
            let new_id = self.n + i;
            let ra = find(&mut parent, m.left);
            let rb = find(&mut parent, m.right);
            parent[ra] = new_id;
            parent[rb] = new_id;
        }
        let mut label_of_root: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(self.n);
        for leaf in 0..self.n {
            let root = find(&mut parent, leaf);
            let next = label_of_root.len();
            let label = *label_of_root.entry(root).or_insert(next);
            labels.push(label);
        }
        Ok(labels)
    }

    /// Cuts at a height threshold: clusters are the connected components
    /// of merges with `height <= threshold`.
    pub fn cut_at_height(&self, threshold: f64) -> Vec<usize> {
        let applied = self
            .merges
            .iter()
            .take_while(|m| m.height <= threshold)
            .count();
        let k = self.n - applied;
        self.cut(k).expect("k derived from merge count is valid")
    }

    /// Leaf ordering for heatmap rendering: the left-to-right order of
    /// leaves in the tree (scipy's `dendrogram` leaf order).
    pub fn leaf_order(&self) -> Vec<usize> {
        if self.n == 1 {
            return vec![0];
        }
        // children[id] = (left, right) for internal nodes.
        let mut order = Vec::with_capacity(self.n);
        let root = self.n + self.merges.len() - 1;
        // Iterative DFS to avoid recursion depth limits on big corpora.
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            if node < self.n {
                order.push(node);
            } else {
                let m = &self.merges[node - self.n];
                // Push right first so left is visited first.
                stack.push(m.right);
                stack.push(m.left);
            }
        }
        order
    }

    /// Cophenetic distance between two leaves: the height of their
    /// lowest common merge.
    pub fn cophenetic(&self, a: usize, b: usize) -> Result<f64> {
        if a >= self.n || b >= self.n {
            return Err(ClusterError::InvalidParameter {
                reason: format!("leaf index out of range ({a}, {b}) for n = {}", self.n),
            });
        }
        if a == b {
            return Ok(0.0);
        }
        // Walk merges in order; track each leaf's current cluster id.
        let mut cluster_of: Vec<usize> = (0..self.n).collect();
        for (i, m) in self.merges.iter().enumerate() {
            let new_id = self.n + i;
            let ca = cluster_of[a];
            let cb = cluster_of[b];
            let touches_a = ca == m.left || ca == m.right;
            let touches_b = cb == m.left || cb == m.right;
            if touches_a && touches_b {
                return Ok(m.height);
            }
            if touches_a {
                cluster_of[a] = new_id;
            }
            if touches_b {
                cluster_of[b] = new_id;
            }
        }
        Err(ClusterError::InvalidParameter {
            reason: "leaves never merged — malformed dendrogram".to_string(),
        })
    }
}

/// Cophenetic correlation coefficient: the Pearson correlation between
/// the original pairwise distances and the cophenetic distances implied
/// by the dendrogram — the standard measure of how faithfully a
/// hierarchical clustering preserves the input geometry (1 = perfect).
pub fn cophenetic_correlation(
    dendrogram: &Dendrogram,
    distances: &crate::metric::DistanceMatrix,
) -> Result<f64> {
    let n = dendrogram.len();
    if distances.len() != n {
        return Err(ClusterError::InvalidParameter {
            reason: format!(
                "dendrogram has {n} leaves but the distance matrix has {}",
                distances.len()
            ),
        });
    }
    if n < 3 {
        return Err(ClusterError::TooFewObservations {
            needed: 3,
            got: n,
            what: "cophenetic correlation",
        });
    }
    let mut original = Vec::with_capacity(n * (n - 1) / 2);
    let mut cophenetic = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            original.push(distances.get(i, j));
            cophenetic.push(dendrogram.cophenetic(i, j)?);
        }
    }
    donorpulse_stats::correlation::pearson(&original, &cophenetic)
        .map(|c| c.r)
        .map_err(|e| ClusterError::Distance(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agglomerative::{agglomerative, Linkage};
    use crate::metric::Metric;

    fn sample() -> Dendrogram {
        // Leaves 0..4, pairs (0,1) and (2,3) then the root.
        Dendrogram::new(
            4,
            vec![
                Merge {
                    left: 0,
                    right: 1,
                    height: 1.0,
                    size: 2,
                },
                Merge {
                    left: 2,
                    right: 3,
                    height: 2.0,
                    size: 2,
                },
                Merge {
                    left: 4,
                    right: 5,
                    height: 5.0,
                    size: 4,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_malformed() {
        assert!(Dendrogram::new(3, vec![]).is_err());
        assert!(Dendrogram::new(
            2,
            vec![Merge {
                left: 0,
                right: 5,
                height: 1.0,
                size: 2
            }]
        )
        .is_err());
        assert!(Dendrogram::new(
            2,
            vec![Merge {
                left: 0,
                right: 0,
                height: 1.0,
                size: 2
            }]
        )
        .is_err());
    }

    #[test]
    fn cut_all_granularities() {
        let d = sample();
        assert_eq!(d.cut(1).unwrap(), vec![0, 0, 0, 0]);
        let two = d.cut(2).unwrap();
        assert_eq!(two[0], two[1]);
        assert_eq!(two[2], two[3]);
        assert_ne!(two[0], two[2]);
        let four = d.cut(4).unwrap();
        assert_eq!(four, vec![0, 1, 2, 3]);
        assert!(d.cut(0).is_err());
        assert!(d.cut(5).is_err());
    }

    #[test]
    fn cut_at_height_thresholds() {
        let d = sample();
        assert_eq!(d.cut_at_height(0.5), vec![0, 1, 2, 3]);
        let mid = d.cut_at_height(2.5);
        assert_eq!(mid[0], mid[1]);
        assert_eq!(mid[2], mid[3]);
        assert_ne!(mid[0], mid[2]);
        assert_eq!(d.cut_at_height(10.0), vec![0, 0, 0, 0]);
    }

    #[test]
    fn leaf_order_contains_all_leaves_and_respects_blocks() {
        let d = sample();
        let order = d.leaf_order();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        // Leaves of each tight pair must be adjacent in the order.
        let pos = |x: usize| order.iter().position(|&v| v == x).unwrap();
        assert_eq!((pos(0) as i64 - pos(1) as i64).abs(), 1);
        assert_eq!((pos(2) as i64 - pos(3) as i64).abs(), 1);
    }

    #[test]
    fn cophenetic_heights() {
        let d = sample();
        assert_eq!(d.cophenetic(0, 1).unwrap(), 1.0);
        assert_eq!(d.cophenetic(2, 3).unwrap(), 2.0);
        assert_eq!(d.cophenetic(0, 3).unwrap(), 5.0);
        assert_eq!(d.cophenetic(1, 1).unwrap(), 0.0);
        assert!(d.cophenetic(0, 9).is_err());
    }

    #[test]
    fn cophenetic_dominates_pairwise_for_single_linkage() {
        // For single linkage, cophenetic distance <= original distance.
        let rows: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![(i as f64).sin() * 3.0, (i as f64).cos() * 2.0])
            .collect();
        let d = agglomerative(&rows, Metric::Euclidean, Linkage::Single).unwrap();
        for i in 0..rows.len() {
            for j in (i + 1)..rows.len() {
                let direct = Metric::Euclidean.distance(&rows[i], &rows[j]).unwrap();
                let coph = d.cophenetic(i, j).unwrap();
                assert!(coph <= direct + 1e-9, "({i},{j}) coph {coph} > {direct}");
            }
        }
    }

    #[test]
    fn cophenetic_correlation_high_for_clean_structure() {
        use crate::metric::{DistanceMatrix, Metric};
        // Two tight, well-separated pairs: the tree preserves geometry
        // almost perfectly.
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.0, 0.1],
            vec![10.0, 10.0],
            vec![10.0, 10.1],
        ];
        let dm = DistanceMatrix::compute(&rows, Metric::Euclidean).unwrap();
        let d = agglomerative(&rows, Metric::Euclidean, Linkage::Average).unwrap();
        let c = cophenetic_correlation(&d, &dm).unwrap();
        assert!(c > 0.99, "c = {c}");
        // Mismatched sizes rejected.
        let small = DistanceMatrix::compute(&rows[..2], Metric::Euclidean).unwrap();
        assert!(cophenetic_correlation(&d, &small).is_err());
    }

    #[test]
    fn single_leaf_order() {
        let d = Dendrogram::new(1, vec![]).unwrap();
        assert_eq!(d.leaf_order(), vec![0]);
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
    }
}
