//! External cluster validation against planted ground truth.
//!
//! The simulator plants user archetypes and state anomalies; these
//! scores quantify how well the recovered clustering matches them —
//! a verification the paper's proprietary corpus never allowed.

use crate::{ClusterError, Result};

/// Adjusted Rand index between two labelings (1 = identical partitions,
/// ~0 = random agreement; can be negative).
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> Result<f64> {
    check(a, b)?;
    let n = a.len();
    let ka = a.iter().max().map_or(0, |m| m + 1);
    let kb = b.iter().max().map_or(0, |m| m + 1);
    // Contingency table.
    let mut table = vec![vec![0u64; kb]; ka];
    for (&x, &y) in a.iter().zip(b) {
        table[x][y] += 1;
    }
    let comb2 = |x: u64| -> f64 { (x * x.saturating_sub(1)) as f64 / 2.0 };
    let sum_ij: f64 = table.iter().flatten().map(|&c| comb2(c)).sum();
    let sum_a: f64 = table.iter().map(|row| comb2(row.iter().sum::<u64>())).sum();
    let sum_b: f64 = (0..kb)
        .map(|j| comb2(table.iter().map(|row| row[j]).sum::<u64>()))
        .sum();
    let total = comb2(n as u64);
    let expected = sum_a * sum_b / total;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate: both partitions trivial (all-one-cluster or
        // all-singletons agree by construction).
        return Ok(1.0);
    }
    Ok((sum_ij - expected) / (max_index - expected))
}

/// Purity: fraction of observations belonging to the majority true class
/// of their assigned cluster.
pub fn purity(predicted: &[usize], truth: &[usize]) -> Result<f64> {
    check(predicted, truth)?;
    let kp = predicted.iter().max().map_or(0, |m| m + 1);
    let kt = truth.iter().max().map_or(0, |m| m + 1);
    let mut table = vec![vec![0u64; kt]; kp];
    for (&p, &t) in predicted.iter().zip(truth) {
        table[p][t] += 1;
    }
    let correct: u64 = table
        .iter()
        .map(|row| row.iter().copied().max().unwrap_or(0))
        .sum();
    Ok(correct as f64 / predicted.len() as f64)
}

fn check(a: &[usize], b: &[usize]) -> Result<()> {
    if a.len() != b.len() {
        return Err(ClusterError::InvalidParameter {
            reason: format!("labelings differ in length ({} vs {})", a.len(), b.len()),
        });
    }
    if a.is_empty() {
        return Err(ClusterError::TooFewObservations {
            needed: 1,
            got: 0,
            what: "cluster validation",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let labels = vec![0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&labels, &labels).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(purity(&labels, &labels).unwrap(), 1.0);
    }

    #[test]
    fn renamed_partitions_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![2, 2, 0, 0, 1, 1];
        assert!((adjusted_rand_index(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(purity(&a, &b).unwrap(), 1.0);
    }

    #[test]
    fn independent_partitions_score_near_zero() {
        // Checkerboard: no information shared.
        let a: Vec<usize> = (0..40).map(|i| i / 20).collect();
        let b: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let ari = adjusted_rand_index(&a, &b).unwrap();
        assert!(ari.abs() < 0.15, "ari {ari}");
    }

    #[test]
    fn ari_known_value() {
        // sklearn.metrics.adjusted_rand_score([0,0,1,1], [0,0,1,2]) = 0.5714…
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 0, 1, 2];
        let ari = adjusted_rand_index(&a, &b).unwrap();
        assert!((ari - 0.5714285714).abs() < 1e-9, "ari {ari}");
    }

    #[test]
    fn purity_partial() {
        // Cluster 0 holds {t0, t0, t1} -> majority 2; cluster 1 holds
        // {t1} -> 1. Purity = 3/4.
        let predicted = vec![0, 0, 0, 1];
        let truth = vec![0, 0, 1, 1];
        assert!((purity(&predicted, &truth).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn purity_is_one_for_refinement() {
        // Splitting each true class into finer clusters keeps purity 1.
        let truth = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let refined = vec![0, 0, 1, 1, 2, 2, 3, 3];
        assert_eq!(purity(&refined, &truth).unwrap(), 1.0);
    }

    #[test]
    fn degenerate_single_cluster() {
        let a = vec![0, 0, 0];
        assert!((adjusted_rand_index(&a, &a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bad_input_rejected() {
        assert!(adjusted_rand_index(&[0], &[0, 1]).is_err());
        assert!(purity(&[], &[]).is_err());
    }
}
