//! Clustering substrate for `donorpulse`.
//!
//! The paper runs two clusterings (both via scikit-learn in the
//! original):
//!
//! * **Agglomerative hierarchical clustering** of the USA states by the
//!   Bhattacharyya distance between their organ-attention distributions
//!   (Fig. 6) — implemented from scratch in [`mod@agglomerative`] with
//!   single / complete / average / Ward linkage over any [`Metric`],
//!   producing a scipy-compatible [`Dendrogram`];
//! * **K-Means** over the user attention matrix `Û` with `k = 12` chosen
//!   by silhouette coefficient, average cluster size and inertia
//!   (Fig. 7) — implemented in [`kmeans`] with k-means++ seeding and
//!   deterministic, seedable behaviour; [`silhouette`] provides the
//!   model-selection criterion.
//!
//! [`validation`] adds adjusted Rand index and purity so integration
//! tests can score recovered clusters against the simulator's planted
//! archetypes — a check the original study could never run.
//!
//! All heavy kernels operate on the contiguous
//! [`Rows`](donorpulse_linalg::Rows) layout and parallelize through
//! [`par`]'s fixed-order chunked reduction, keeping results
//! bit-identical for any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agglomerative;
pub mod dendrogram;
pub mod kmeans;
pub mod metric;
pub mod par;
pub mod render;
pub mod silhouette;
pub mod validation;

mod error;

pub use agglomerative::{agglomerative, agglomerative_rows, Linkage};
pub use dendrogram::Dendrogram;
pub use error::ClusterError;
pub use kmeans::{KMeans, KMeansConfig};
pub use metric::{DistanceMatrix, Metric};
pub use silhouette::{silhouette_score, silhouette_score_rows};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, ClusterError>;
