//! Property-based tests for the geocoding substrate.

use donorpulse_geo::gazetteer::Gazetteer;
use donorpulse_geo::point::state_of_point;
use donorpulse_geo::{parse_location, Geocoder, ParseOutcome, UsState};
use proptest::prelude::*;
use std::sync::OnceLock;

fn gz() -> &'static Gazetteer {
    static GZ: OnceLock<Gazetteer> = OnceLock::new();
    GZ.get_or_init(Gazetteer::new)
}

fn geocoder() -> &'static Geocoder {
    static GC: OnceLock<Geocoder> = OnceLock::new();
    GC.get_or_init(Geocoder::new)
}

proptest! {
    #[test]
    fn parser_never_panics_on_arbitrary_unicode(raw in "\\PC{0,120}") {
        let g = gz();
        let _ = parse_location(g, &raw);
    }

    #[test]
    fn parser_deterministic(raw in "\\PC{0,80}") {
        let g = gz();
        prop_assert_eq!(parse_location(g, &raw), parse_location(g, &raw));
    }

    #[test]
    fn resolved_confidence_in_unit_interval(raw in "\\PC{0,80}") {
        let g = gz();
        if let ParseOutcome::Resolved { confidence, .. } = parse_location(g, &raw) {
            prop_assert!(confidence > 0.0 && confidence <= 1.0);
        }
    }

    #[test]
    fn city_comma_abbr_always_resolves_to_that_state(
        idx in 0usize..donorpulse_geo::UsState::COUNT,
        city in "[a-z]{3,12}",
    ) {
        let state = UsState::from_index(idx).unwrap();
        let g = gz();
        let raw = format!("{city}, {}", state.abbr());
        match parse_location(g, &raw) {
            ParseOutcome::Resolved { state: got, .. } => prop_assert_eq!(got, state),
            other => prop_assert!(false, "expected resolution, got {:?}", other),
        }
    }

    #[test]
    fn point_resolution_total_and_stable(lat in -90.0..90.0f64, lon in -180.0..180.0f64) {
        let a = state_of_point(lat, lon);
        let b = state_of_point(lat, lon);
        prop_assert_eq!(a, b);
        if let Some(s) = a {
            prop_assert!(s.bounding_box().contains(lat, lon));
        }
    }

    #[test]
    fn locate_never_reports_state_and_non_us_together(
        profile in proptest::option::of("\\PC{0,60}"),
        geo in proptest::option::of((-90.0..90.0f64, -180.0..180.0f64)),
    ) {
        let g = geocoder();
        let l = g.locate(profile.as_deref(), geo);
        prop_assert!(!(l.state.is_some() && l.non_us));
    }
}
