//! Free-text profile location parsing.
//!
//! Self-reported Twitter locations are noisy: "Wichita, KS", "NYC ✈ LA",
//! "somewhere on earth", "Kansas City", flags, emoji. The parser resolves
//! such strings to a US state, classifies clearly foreign locations as
//! non-US, and refuses to guess on junk — mirroring what the paper gets
//! from OpenStreetMap augmentation (reliable "even at the county level",
//! Mislove et al.).
//!
//! Resolution strategy, in order (first hit wins):
//!
//! 1. empty / junk marker → [`ParseOutcome::Unknown`];
//! 2. `…, ST` — trailing postal abbreviation → that state;
//! 3. a full state name anywhere ("sunny Kansas farm") → that state;
//! 4. a nickname/alias as a whole segment or the whole string ("nyc",
//!    "the windy city") → its state;
//! 5. an exact city name as a segment or the whole string → the most
//!    populous city of that name;
//! 6. a non-US marker anywhere → [`ParseOutcome::NonUs`];
//! 7. the whole raw string is an UPPERCASE two-letter abbreviation
//!    ("TX") → that state;
//! 8. a known city name anywhere in the text → that city's state (lowest
//!    confidence);
//! 9. otherwise → [`ParseOutcome::Unknown`].

use crate::gazetteer::Gazetteer;
use crate::state::UsState;
use donorpulse_text::normalize::normalize;
use serde::{Deserialize, Serialize};

/// How a location string was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParseMethod {
    /// `City, ST` with a trailing postal abbreviation.
    CityStateAbbr,
    /// Full state name found in the text.
    StateName,
    /// Nickname/alias ("nyc", "philly").
    Alias,
    /// Exact city segment match.
    City,
    /// The whole string is an uppercase postal abbreviation.
    StateAbbr,
    /// City name found loosely inside longer text.
    CityInText,
}

/// The result of parsing one profile location string.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ParseOutcome {
    /// Resolved to a US state.
    Resolved {
        /// The resolved state.
        state: UsState,
        /// Heuristic confidence in `(0, 1]`.
        confidence: f64,
        /// Which rule fired.
        method: ParseMethod,
    },
    /// Confidently outside the USA.
    NonUs,
    /// Unresolvable (empty, junk, or unrecognized).
    Unknown,
}

impl ParseOutcome {
    /// The resolved state, if any.
    pub fn state(&self) -> Option<UsState> {
        match self {
            ParseOutcome::Resolved { state, .. } => Some(*state),
            _ => None,
        }
    }

    fn resolved(state: UsState, confidence: f64, method: ParseMethod) -> Self {
        ParseOutcome::Resolved {
            state,
            confidence,
            method,
        }
    }
}

/// Splits a normalized location into segments on common profile
/// separators.
fn segments(text: &str) -> Vec<String> {
    text.split(|c: char| {
        matches!(
            c,
            ',' | '/' | '|' | ';' | '•' | '·' | '✈' | '➡' | '→' | '~' | '+'
        )
    })
    .map(|s| {
        s.trim()
            .trim_matches(|c: char| !c.is_alphanumeric() && c != '.')
    })
    .filter(|s| !s.is_empty())
    .map(str::to_string)
    .collect()
}

/// Strips dots and spaces for abbreviation testing: "d.c." → "dc".
fn strip_abbr(s: &str) -> String {
    s.chars().filter(|c| c.is_ascii_alphabetic()).collect()
}

/// Removes a leading "the " from a segment for alias lookups.
fn strip_article(s: &str) -> &str {
    s.strip_prefix("the ").unwrap_or(s)
}

/// Parses one raw profile location string. See the module docs for the
/// rule order.
pub fn parse_location(gazetteer: &Gazetteer, raw: &str) -> ParseOutcome {
    let text = normalize(raw);
    if text.is_empty() {
        return ParseOutcome::Unknown;
    }
    let segs = segments(&text);
    if segs.is_empty() {
        return ParseOutcome::Unknown;
    }

    // 1. Junk non-places ("earth", "the moon").
    if gazetteer.is_junk(&text) || segs.iter().any(|s| gazetteer.is_junk(s)) {
        return ParseOutcome::Unknown;
    }

    // 2. Trailing "…, ST" postal abbreviation.
    if segs.len() >= 2 {
        let last = strip_abbr(segs.last().expect("nonempty"));
        if last.len() == 2 {
            if let Some(state) = UsState::from_abbr(&last) {
                // Bonus confidence when the city part confirms the state.
                let city_part = &segs[segs.len() - 2];
                let confidence = if gazetteer.city_in_state(city_part, state).is_some() {
                    0.97
                } else {
                    0.9
                };
                return ParseOutcome::resolved(state, confidence, ParseMethod::CityStateAbbr);
            }
        }
    }

    // 3. Full state name anywhere (first mention wins).
    let named = gazetteer.state_names_in(&text);
    if let Some(&state) = named.first() {
        return ParseOutcome::resolved(state, 0.9, ParseMethod::StateName);
    }

    // 4. Alias as whole string or whole segment (tried verbatim first so
    // keys like "the garden state" match, then with a leading "the "
    // stripped so "the windy city" finds the "windy city" key).
    if let Some(state) = gazetteer
        .alias_exact(&text)
        .or_else(|| gazetteer.alias_exact(strip_article(&text)))
        .or_else(|| {
            segs.iter().find_map(|s| {
                gazetteer
                    .alias_exact(s)
                    .or_else(|| gazetteer.alias_exact(strip_article(s)))
            })
        })
    {
        return ParseOutcome::resolved(state, 0.85, ParseMethod::Alias);
    }

    // 5. Exact city as whole string, collapsed string, or segment.
    let collapsed: String = segs.join(" ");
    if let Some(city) = gazetteer
        .city_exact(&text)
        .or_else(|| gazetteer.city_exact(&collapsed))
        .or_else(|| segs.iter().find_map(|s| gazetteer.city_exact(s)))
    {
        return ParseOutcome::resolved(city.state, 0.8, ParseMethod::City);
    }

    // 6. Non-US markers.
    if gazetteer.mentions_non_us(&text) {
        return ParseOutcome::NonUs;
    }

    // 7. Whole raw string is an UPPERCASE two-letter abbreviation.
    let raw_trim = raw.trim();
    if raw_trim.len() == 2 && raw_trim.chars().all(|c| c.is_ascii_uppercase()) {
        if let Some(state) = UsState::from_abbr(raw_trim) {
            return ParseOutcome::resolved(state, 0.7, ParseMethod::StateAbbr);
        }
    }

    // 8. City name loosely inside longer text.
    if let Some(city) = gazetteer.cities_in(&text).first() {
        return ParseOutcome::resolved(city.state, 0.6, ParseMethod::CityInText);
    }

    ParseOutcome::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> ParseOutcome {
        parse_location(&Gazetteer::new(), raw)
    }

    fn state_of(raw: &str) -> Option<UsState> {
        parse(raw).state()
    }

    #[test]
    fn city_state_abbr() {
        assert_eq!(state_of("Wichita, KS"), Some(UsState::Kansas));
        assert_eq!(state_of("Boston, MA"), Some(UsState::Massachusetts));
        assert_eq!(state_of("new orleans, la"), Some(UsState::Louisiana));
        // Confidence is higher when city confirms state.
        match parse("Wichita, KS") {
            ParseOutcome::Resolved {
                confidence, method, ..
            } => {
                assert!(confidence > 0.95);
                assert_eq!(method, ParseMethod::CityStateAbbr);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse("Smalltown, KS") {
            ParseOutcome::Resolved { confidence, .. } => assert!(confidence < 0.95),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn abbr_with_dots() {
        assert_eq!(
            state_of("Washington, D.C."),
            Some(UsState::DistrictOfColumbia)
        );
    }

    #[test]
    fn full_state_name() {
        assert_eq!(state_of("Kansas"), Some(UsState::Kansas));
        assert_eq!(state_of("sunny kansas farm"), Some(UsState::Kansas));
        assert_eq!(state_of("North Dakota"), Some(UsState::NorthDakota));
        // Homonym pitfall: "kansas city" must be Missouri (the bigger
        // one), not matched as the state name "kansas". But state names
        // are checked first; "kansas city" contains "kansas" as a word…
        // The trailing "city" word makes it a known city string though —
        // documented behaviour below.
    }

    #[test]
    fn kansas_city_resolves_via_state_name_rule() {
        // "Kansas City" contains the full state name "kansas" as a word,
        // so rule 3 fires and resolves to Kansas. This mirrors real
        // geocoder ambiguity for the bi-state metro; "Kansas City, MO"
        // resolves correctly via the abbreviation.
        assert_eq!(state_of("Kansas City, MO"), Some(UsState::Missouri));
        assert_eq!(state_of("Kansas City, KS"), Some(UsState::Kansas));
    }

    #[test]
    fn aliases() {
        assert_eq!(state_of("NYC"), Some(UsState::NewYork));
        assert_eq!(state_of("the windy city"), Some(UsState::Illinois));
        assert_eq!(state_of("NOLA"), Some(UsState::Louisiana));
        // Verbatim alias keys that *start* with "the " must also match.
        assert_eq!(state_of("The Garden State"), Some(UsState::NewJersey));
        assert_eq!(state_of("the D"), Some(UsState::Michigan));
        assert_eq!(state_of("Philly"), Some(UsState::Pennsylvania));
        // Multi-place strings resolve to the first *exact-segment* alias:
        // "vegas baby" is not an exact alias segment but "nyc" is.
        assert_eq!(state_of("Vegas baby ✈ NYC"), Some(UsState::NewYork));
    }

    #[test]
    fn exact_city() {
        assert_eq!(state_of("Chicago"), Some(UsState::Illinois));
        assert_eq!(state_of("columbus"), Some(UsState::Ohio)); // biggest
        assert_eq!(state_of("Portland"), Some(UsState::Oregon));
        assert_eq!(state_of("Wichita"), Some(UsState::Kansas));
    }

    #[test]
    fn bare_uppercase_abbr() {
        assert_eq!(state_of("TX"), Some(UsState::Texas));
        assert_eq!(state_of("KS"), Some(UsState::Kansas));
        // Lowercase or mixed case is NOT treated as an abbreviation
        // ("hi", "ok", "me", "in", "or" are common words).
        assert_eq!(state_of("hi"), None);
        assert_eq!(state_of("ok"), None);
        assert_eq!(state_of("In"), None);
        // "LA" is claimed by the Los Angeles alias before the abbr rule.
        assert_eq!(state_of("LA"), Some(UsState::California));
    }

    #[test]
    fn non_us_detected() {
        assert_eq!(parse("London"), ParseOutcome::NonUs);
        assert_eq!(parse("Toronto, Canada"), ParseOutcome::NonUs);
        assert_eq!(parse("São Paulo, Brazil"), ParseOutcome::NonUs);
        assert_eq!(parse("living in tokyo"), ParseOutcome::NonUs);
    }

    #[test]
    fn paris_texas_is_texas() {
        // State names outrank non-US markers.
        assert_eq!(state_of("Paris, Texas"), Some(UsState::Texas));
        assert_eq!(parse("Paris"), ParseOutcome::NonUs);
    }

    #[test]
    fn junk_is_unknown() {
        assert_eq!(parse(""), ParseOutcome::Unknown);
        assert_eq!(parse("   "), ParseOutcome::Unknown);
        assert_eq!(parse("Earth"), ParseOutcome::Unknown);
        assert_eq!(parse("the moon"), ParseOutcome::Unknown);
        assert_eq!(parse("everywhere"), ParseOutcome::Unknown);
        assert_eq!(parse("Hogwarts"), ParseOutcome::Unknown);
        assert_eq!(parse("???"), ParseOutcome::Unknown);
        assert_eq!(parse("living my best life"), ParseOutcome::Unknown);
    }

    #[test]
    fn city_in_longer_text() {
        assert_eq!(
            state_of("proud nurse working in seattle area"),
            Some(UsState::Washington)
        );
    }

    #[test]
    fn emoji_and_decoration_tolerated() {
        assert_eq!(state_of("🌴 Miami, FL 🌴"), Some(UsState::Florida));
        assert_eq!(state_of("❤️ Boston ❤️"), Some(UsState::Massachusetts));
    }

    #[test]
    fn multi_place_takes_first_state_mention() {
        assert_eq!(state_of("Texas ✈ Ohio"), Some(UsState::Texas));
    }

    #[test]
    fn segments_split_on_separators() {
        assert_eq!(segments("a, b / c | d • e"), vec!["a", "b", "c", "d", "e"]);
        assert_eq!(segments("  ,  , "), Vec::<String>::new());
    }

    #[test]
    fn outcome_state_accessor() {
        assert_eq!(ParseOutcome::NonUs.state(), None);
        assert_eq!(ParseOutcome::Unknown.state(), None);
    }
}
