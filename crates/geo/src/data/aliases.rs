//! Place nicknames, non-US markers, and junk location markers.
//!
//! Twitter profile locations are free text. Besides proper city/state
//! names, three more vocabularies matter in practice:
//!
//! * **aliases** — nicknames and shorthand people actually type ("nyc",
//!   "philly", "the windy city", "nola");
//! * **non-US markers** — foreign country/city names used to *discard*
//!   users, mirroring the paper's USA filter (only 134,986 of 975,021
//!   collected tweets could be attributed to USA users);
//! * **junk markers** — non-places ("earth", "everywhere", "the moon")
//!   that must resolve to *unknown* rather than being force-matched.

use crate::state::UsState;

/// Nickname → state. All keys lowercase; matched against whole segments
/// and whole strings, never inside words.
pub const ALIASES: &[(&str, UsState)] = &[
    // New York City and boroughs.
    ("nyc", UsState::NewYork),
    ("new york city", UsState::NewYork),
    ("the big apple", UsState::NewYork),
    ("big apple", UsState::NewYork),
    ("brooklyn", UsState::NewYork),
    ("manhattan", UsState::NewYork),
    ("the bronx", UsState::NewYork),
    ("bronx", UsState::NewYork),
    ("queens", UsState::NewYork),
    ("staten island", UsState::NewYork),
    ("harlem", UsState::NewYork),
    ("long island", UsState::NewYork),
    ("upstate new york", UsState::NewYork),
    // California.
    ("la", UsState::California), // dominant Twitter usage: Los Angeles
    ("l.a.", UsState::California),
    ("socal", UsState::California),
    ("norcal", UsState::California),
    ("cali", UsState::California),
    ("sf", UsState::California),
    ("san fran", UsState::California),
    ("frisco", UsState::California),
    ("bay area", UsState::California),
    ("the bay", UsState::California),
    ("silicon valley", UsState::California),
    ("hollywood", UsState::California),
    ("east la", UsState::California),
    // Illinois.
    ("chi-town", UsState::Illinois),
    ("chitown", UsState::Illinois),
    ("the windy city", UsState::Illinois),
    ("windy city", UsState::Illinois),
    ("chi town", UsState::Illinois),
    // Pennsylvania.
    ("philly", UsState::Pennsylvania),
    ("the city of brotherly love", UsState::Pennsylvania),
    ("pgh", UsState::Pennsylvania),
    // Nevada.
    ("vegas", UsState::Nevada),
    ("sin city", UsState::Nevada),
    // Louisiana.
    ("nola", UsState::Louisiana),
    ("the big easy", UsState::Louisiana),
    ("big easy", UsState::Louisiana),
    // Georgia.
    ("atl", UsState::Georgia),
    ("hotlanta", UsState::Georgia),
    // Texas.
    ("dfw", UsState::Texas),
    ("htown", UsState::Texas),
    ("h-town", UsState::Texas),
    ("h town", UsState::Texas),
    // Michigan.
    ("motor city", UsState::Michigan),
    ("motown", UsState::Michigan),
    ("the d", UsState::Michigan),
    // Massachusetts.
    ("beantown", UsState::Massachusetts),
    // Minnesota.
    ("twin cities", UsState::Minnesota),
    // Tennessee.
    ("music city", UsState::Tennessee),
    // Colorado.
    ("mile high city", UsState::Colorado),
    ("the mile high city", UsState::Colorado),
    // Washington (state).
    ("emerald city", UsState::Washington),
    // District of Columbia.
    ("dc", UsState::DistrictOfColumbia),
    ("d.c.", UsState::DistrictOfColumbia),
    ("washington, d.c.", UsState::DistrictOfColumbia),
    ("the district", UsState::DistrictOfColumbia),
    ("dmv", UsState::DistrictOfColumbia),
    // New Jersey.
    ("jersey", UsState::NewJersey),
    ("the garden state", UsState::NewJersey),
    // Arizona.
    ("the valley of the sun", UsState::Arizona),
    // Florida.
    ("south beach", UsState::Florida),
    ("the sunshine state", UsState::Florida),
    // Utah.
    ("slc", UsState::Utah),
    // Missouri.
    ("stl", UsState::Missouri),
    ("st louis", UsState::Missouri),
    ("st. louis", UsState::Missouri),
    // Minnesota.
    ("st paul", UsState::Minnesota),
    ("st. paul", UsState::Minnesota),
    // Oklahoma.
    ("okc", UsState::Oklahoma),
    // State nicknames people actually put in profiles.
    ("the lone star state", UsState::Texas),
    ("lone star state", UsState::Texas),
    ("the golden state", UsState::California),
    ("golden state", UsState::California),
    ("the empire state", UsState::NewYork),
    ("empire state", UsState::NewYork),
    ("the sunflower state", UsState::Kansas),
    ("sunflower state", UsState::Kansas),
    ("the bluegrass state", UsState::Kentucky),
    ("bluegrass state", UsState::Kentucky),
    ("the buckeye state", UsState::Ohio),
    ("buckeye state", UsState::Ohio),
    ("the hoosier state", UsState::Indiana),
    ("hoosier state", UsState::Indiana),
    ("the pelican state", UsState::Louisiana),
    ("pelican state", UsState::Louisiana),
    ("the bay state", UsState::Massachusetts),
    ("bay state", UsState::Massachusetts),
    ("the ocean state", UsState::RhodeIsland),
    ("ocean state", UsState::RhodeIsland),
    ("the first state", UsState::Delaware),
    ("first state", UsState::Delaware),
    ("the evergreen state", UsState::Washington),
    ("evergreen state", UsState::Washington),
    ("the beaver state", UsState::Oregon),
    ("beaver state", UsState::Oregon),
    ("the peach state", UsState::Georgia),
    ("peach state", UsState::Georgia),
    ("the badger state", UsState::Wisconsin),
    ("badger state", UsState::Wisconsin),
    ("the centennial state", UsState::Colorado),
    ("centennial state", UsState::Colorado),
    ("the cornhusker state", UsState::Nebraska),
    ("cornhusker state", UsState::Nebraska),
    ("the old dominion", UsState::Virginia),
    ("old dominion", UsState::Virginia),
    ("the aloha state", UsState::Hawaii),
    ("aloha state", UsState::Hawaii),
    ("the last frontier", UsState::Alaska),
    ("last frontier", UsState::Alaska),
    ("the grand canyon state", UsState::Arizona),
    ("grand canyon state", UsState::Arizona),
    ("the land of enchantment", UsState::NewMexico),
    ("land of enchantment", UsState::NewMexico),
    ("the show me state", UsState::Missouri),
    ("show me state", UsState::Missouri),
    ("la isla del encanto", UsState::PuertoRico),
];

/// Foreign country/city markers: a location containing one of these (as a
/// whole segment or token phrase) is classified non-US.
pub const NON_US_MARKERS: &[&str] = &[
    "canada",
    "toronto",
    "montreal",
    "ottawa",
    "quebec",
    "alberta",
    "ontario",
    "uk",
    "united kingdom",
    "england",
    "london",
    "scotland",
    "wales",
    "ireland",
    "dublin",
    "france",
    "paris",
    "germany",
    "berlin",
    "munich",
    "spain",
    "madrid",
    "barcelona",
    "italy",
    "rome",
    "milan",
    "portugal",
    "lisbon",
    "netherlands",
    "amsterdam",
    "belgium",
    "brussels",
    "sweden",
    "stockholm",
    "norway",
    "oslo",
    "denmark",
    "copenhagen",
    "switzerland",
    "zurich",
    "austria",
    "vienna",
    "greece",
    "athens greece",
    "turkey",
    "istanbul",
    "russia",
    "moscow",
    "poland",
    "warsaw",
    "mexico",
    "mexico city",
    "guadalajara",
    "brazil",
    "sao paulo",
    "rio de janeiro",
    "argentina",
    "buenos aires",
    "chile",
    "santiago",
    "colombia",
    "bogota",
    "peru",
    "lima",
    "venezuela",
    "caracas",
    "india",
    "mumbai",
    "delhi",
    "new delhi",
    "bangalore",
    "chennai",
    "pakistan",
    "karachi",
    "lahore",
    "bangladesh",
    "dhaka",
    "china",
    "beijing",
    "shanghai",
    "hong kong",
    "taiwan",
    "taipei",
    "japan",
    "tokyo",
    "osaka",
    "korea",
    "seoul",
    "south korea",
    "philippines",
    "manila",
    "indonesia",
    "jakarta",
    "malaysia",
    "kuala lumpur",
    "singapore",
    "thailand",
    "bangkok",
    "vietnam",
    "hanoi",
    "australia",
    "sydney",
    "melbourne",
    "brisbane",
    "perth",
    "new zealand",
    "auckland",
    "wellington",
    "nigeria",
    "lagos",
    "abuja",
    "kenya",
    "nairobi",
    "ghana",
    "accra",
    "south africa",
    "johannesburg",
    "cape town",
    "egypt",
    "cairo",
    "morocco",
    "ethiopia",
    "uganda",
    "tanzania",
    "uae",
    "dubai",
    "abu dhabi",
    "saudi arabia",
    "riyadh",
    "qatar",
    "doha",
    "israel",
    "tel aviv",
    "jerusalem",
    "lebanon",
    "beirut",
    "jordan",
    "iran",
    "tehran",
    "iraq",
    "baghdad",
];

/// Non-places: strings that mean "no usable location".
pub const JUNK_MARKERS: &[&str] = &[
    "earth",
    "planet earth",
    "world",
    "worldwide",
    "everywhere",
    "nowhere",
    "somewhere",
    "anywhere",
    "global",
    "the internet",
    "internet",
    "online",
    "cyberspace",
    "the moon",
    "moon",
    "mars",
    "space",
    "outer space",
    "the universe",
    "universe",
    "hell",
    "heaven",
    "paradise",
    "home",
    "my house",
    "your heart",
    "in my head",
    "wonderland",
    "neverland",
    "narnia",
    "hogwarts",
    "middle earth",
    "the upside down",
    "unknown",
    "n/a",
    "none",
    "null",
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn alias_keys_unique_and_lowercase() {
        let mut seen = HashSet::new();
        for (k, _) in ALIASES {
            assert_eq!(*k, k.to_lowercase(), "{k}");
            assert!(seen.insert(*k), "duplicate alias {k}");
        }
    }

    #[test]
    fn marker_lists_lowercase_and_disjoint() {
        let non_us: HashSet<&str> = NON_US_MARKERS.iter().copied().collect();
        let junk: HashSet<&str> = JUNK_MARKERS.iter().copied().collect();
        assert_eq!(
            non_us.len(),
            NON_US_MARKERS.len(),
            "dupes in NON_US_MARKERS"
        );
        assert_eq!(junk.len(), JUNK_MARKERS.len(), "dupes in JUNK_MARKERS");
        assert!(non_us.is_disjoint(&junk));
        for m in NON_US_MARKERS.iter().chain(JUNK_MARKERS) {
            assert_eq!(*m, m.to_lowercase(), "{m}");
        }
    }

    #[test]
    fn aliases_do_not_shadow_markers() {
        let alias_keys: HashSet<&str> = ALIASES.iter().map(|(k, _)| *k).collect();
        for m in NON_US_MARKERS.iter().chain(JUNK_MARKERS) {
            assert!(!alias_keys.contains(m), "alias shadows marker {m}");
        }
    }

    #[test]
    fn key_nicknames_present() {
        let get = |k: &str| ALIASES.iter().find(|(a, _)| *a == k).map(|(_, s)| *s);
        assert_eq!(get("nyc"), Some(UsState::NewYork));
        assert_eq!(get("nola"), Some(UsState::Louisiana));
        assert_eq!(get("philly"), Some(UsState::Pennsylvania));
        assert_eq!(get("dc"), Some(UsState::DistrictOfColumbia));
    }
}
