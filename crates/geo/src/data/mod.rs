//! Embedded gazetteer data: city coordinates, place nicknames, and
//! non-US / junk location markers.

pub mod aliases;
pub mod cities;

pub use aliases::{ALIASES, JUNK_MARKERS, NON_US_MARKERS};
pub use cities::{City, CITIES};
