//! Embedded table of major US cities.
//!
//! This is the core of the OpenStreetMap substitute: roughly 340 cities
//! covering every state, each with its state, coordinates, and a 2015
//! population estimate. Population is used to rank candidates when a
//! city name is ambiguous across states (e.g. "Columbus" resolves to
//! Ohio over Georgia, "Portland" to Oregon over Maine) — the same
//! most-prominent-match behaviour a real geocoder exhibits.
//!
//! Names are stored lowercase; lookups happen on normalized text.

use crate::state::UsState;

/// One gazetteer city entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct City {
    /// Lowercase city name.
    pub name: &'static str,
    /// State the city belongs to.
    pub state: UsState,
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
    /// Approximate 2015 population.
    pub population: u32,
}

const fn city(name: &'static str, state: UsState, lat: f64, lon: f64, population: u32) -> City {
    City {
        name,
        state,
        lat,
        lon,
        population,
    }
}

/// The embedded city table.
pub const CITIES: &[City] = &[
    // Alabama
    city("birmingham", UsState::Alabama, 33.52, -86.80, 212_000),
    city("montgomery", UsState::Alabama, 32.37, -86.30, 200_000),
    city("mobile", UsState::Alabama, 30.69, -88.04, 194_000),
    city("huntsville", UsState::Alabama, 34.73, -86.59, 190_000),
    city("tuscaloosa", UsState::Alabama, 33.21, -87.57, 99_000),
    // Alaska
    city("anchorage", UsState::Alaska, 61.22, -149.90, 298_000),
    city("fairbanks", UsState::Alaska, 64.84, -147.72, 32_000),
    city("juneau", UsState::Alaska, 58.30, -134.42, 32_000),
    // Arizona
    city("phoenix", UsState::Arizona, 33.45, -112.07, 1_563_000),
    city("tucson", UsState::Arizona, 32.22, -110.97, 531_000),
    city("mesa", UsState::Arizona, 33.42, -111.83, 471_000),
    city("chandler", UsState::Arizona, 33.31, -111.84, 260_000),
    city("scottsdale", UsState::Arizona, 33.49, -111.92, 237_000),
    city("tempe", UsState::Arizona, 33.43, -111.94, 175_000),
    city("flagstaff", UsState::Arizona, 35.20, -111.65, 70_000),
    // Arkansas
    city("little rock", UsState::Arkansas, 34.75, -92.29, 198_000),
    city("fort smith", UsState::Arkansas, 35.39, -94.40, 88_000),
    city("fayetteville", UsState::Arkansas, 36.08, -94.16, 81_000),
    // California
    city(
        "los angeles",
        UsState::California,
        34.05,
        -118.24,
        3_972_000,
    ),
    city("san diego", UsState::California, 32.72, -117.16, 1_395_000),
    city("san jose", UsState::California, 37.34, -121.89, 1_027_000),
    city(
        "san francisco",
        UsState::California,
        37.77,
        -122.42,
        865_000,
    ),
    city("fresno", UsState::California, 36.75, -119.77, 520_000),
    city("sacramento", UsState::California, 38.58, -121.49, 490_000),
    city("long beach", UsState::California, 33.77, -118.19, 474_000),
    city("oakland", UsState::California, 37.80, -122.27, 420_000),
    city("bakersfield", UsState::California, 35.37, -119.02, 374_000),
    city("anaheim", UsState::California, 33.84, -117.91, 351_000),
    city("riverside", UsState::California, 33.95, -117.40, 323_000),
    city("santa ana", UsState::California, 33.75, -117.87, 335_000),
    city("irvine", UsState::California, 33.68, -117.83, 257_000),
    city(
        "san bernardino",
        UsState::California,
        34.11,
        -117.29,
        216_000,
    ),
    city("modesto", UsState::California, 37.64, -120.99, 209_000),
    city("oxnard", UsState::California, 34.20, -119.18, 207_000),
    city("fontana", UsState::California, 34.09, -117.44, 207_000),
    city("santa barbara", UsState::California, 34.42, -119.70, 92_000),
    city("pasadena", UsState::California, 34.15, -118.14, 142_000),
    city("berkeley", UsState::California, 37.87, -122.27, 120_000),
    city("palo alto", UsState::California, 37.44, -122.14, 67_000),
    city("santa monica", UsState::California, 34.02, -118.49, 93_000),
    // Colorado
    city("denver", UsState::Colorado, 39.74, -104.99, 682_000),
    city(
        "colorado springs",
        UsState::Colorado,
        38.83,
        -104.82,
        456_000,
    ),
    city("aurora", UsState::Colorado, 39.73, -104.83, 359_000),
    city("fort collins", UsState::Colorado, 40.59, -105.08, 161_000),
    city("boulder", UsState::Colorado, 40.01, -105.27, 107_000),
    // Connecticut
    city("bridgeport", UsState::Connecticut, 41.19, -73.20, 148_000),
    city("new haven", UsState::Connecticut, 41.31, -72.92, 130_000),
    city("stamford", UsState::Connecticut, 41.05, -73.54, 129_000),
    city("hartford", UsState::Connecticut, 41.76, -72.67, 124_000),
    // Delaware
    city("wilmington", UsState::Delaware, 39.75, -75.55, 72_000),
    city("dover", UsState::Delaware, 39.16, -75.52, 37_000),
    // District of Columbia
    city(
        "washington dc",
        UsState::DistrictOfColumbia,
        38.91,
        -77.04,
        672_000,
    ),
    city(
        "georgetown",
        UsState::DistrictOfColumbia,
        38.91,
        -77.07,
        20_000,
    ),
    // Florida
    city("jacksonville", UsState::Florida, 30.33, -81.66, 868_000),
    city("miami", UsState::Florida, 25.76, -80.19, 441_000),
    city("tampa", UsState::Florida, 27.95, -82.46, 369_000),
    city("orlando", UsState::Florida, 28.54, -81.38, 270_000),
    city("st petersburg", UsState::Florida, 27.77, -82.64, 257_000),
    city("hialeah", UsState::Florida, 25.86, -80.28, 237_000),
    city("tallahassee", UsState::Florida, 30.44, -84.28, 189_000),
    city("fort lauderdale", UsState::Florida, 26.12, -80.14, 178_000),
    city("gainesville", UsState::Florida, 29.65, -82.32, 131_000),
    city("sarasota", UsState::Florida, 27.34, -82.53, 56_000),
    city("key west", UsState::Florida, 24.56, -81.78, 27_000),
    // Georgia
    city("atlanta", UsState::Georgia, 33.75, -84.39, 463_000),
    city("augusta", UsState::Georgia, 33.47, -81.97, 197_000),
    city("columbus", UsState::Georgia, 32.46, -84.99, 200_000),
    city("savannah", UsState::Georgia, 32.08, -81.09, 146_000),
    city("athens", UsState::Georgia, 33.96, -83.38, 122_000),
    city("macon", UsState::Georgia, 32.84, -83.63, 153_000),
    // Hawaii
    city("honolulu", UsState::Hawaii, 21.31, -157.86, 352_000),
    city("hilo", UsState::Hawaii, 19.71, -155.08, 45_000),
    // Idaho
    city("boise", UsState::Idaho, 43.62, -116.20, 218_000),
    city("idaho falls", UsState::Idaho, 43.49, -112.03, 60_000),
    // Illinois
    city("chicago", UsState::Illinois, 41.88, -87.63, 2_721_000),
    city("aurora", UsState::Illinois, 41.76, -88.32, 201_000),
    city("rockford", UsState::Illinois, 42.27, -89.09, 148_000),
    city("joliet", UsState::Illinois, 41.53, -88.08, 148_000),
    city("naperville", UsState::Illinois, 41.75, -88.15, 147_000),
    city("springfield", UsState::Illinois, 39.78, -89.65, 117_000),
    city("peoria", UsState::Illinois, 40.69, -89.59, 115_000),
    city("evanston", UsState::Illinois, 42.04, -87.69, 75_000),
    // Indiana
    city("indianapolis", UsState::Indiana, 39.77, -86.16, 853_000),
    city("fort wayne", UsState::Indiana, 41.08, -85.14, 260_000),
    city("evansville", UsState::Indiana, 37.97, -87.56, 120_000),
    city("south bend", UsState::Indiana, 41.68, -86.25, 101_000),
    city("bloomington", UsState::Indiana, 39.17, -86.53, 84_000),
    // Iowa
    city("des moines", UsState::Iowa, 41.60, -93.61, 215_000),
    city("cedar rapids", UsState::Iowa, 41.98, -91.67, 130_000),
    city("davenport", UsState::Iowa, 41.52, -90.58, 103_000),
    city("iowa city", UsState::Iowa, 41.66, -91.53, 74_000),
    // Kansas
    city("wichita", UsState::Kansas, 37.69, -97.34, 390_000),
    city("overland park", UsState::Kansas, 38.98, -94.67, 189_000),
    city("kansas city", UsState::Missouri, 39.10, -94.58, 481_000),
    city("kansas city ks", UsState::Kansas, 39.11, -94.63, 151_000),
    city("olathe", UsState::Kansas, 38.88, -94.82, 135_000),
    city("topeka", UsState::Kansas, 39.05, -95.68, 127_000),
    city("lawrence", UsState::Kansas, 38.97, -95.24, 93_000),
    // Kentucky
    city("louisville", UsState::Kentucky, 38.25, -85.76, 615_000),
    city("lexington", UsState::Kentucky, 38.04, -84.50, 314_000),
    city("bowling green", UsState::Kentucky, 36.99, -86.44, 65_000),
    // Louisiana
    city("new orleans", UsState::Louisiana, 29.95, -90.07, 390_000),
    city("baton rouge", UsState::Louisiana, 30.45, -91.15, 229_000),
    city("shreveport", UsState::Louisiana, 32.53, -93.75, 197_000),
    city("lafayette", UsState::Louisiana, 30.22, -92.02, 127_000),
    // Maine
    city("portland", UsState::Oregon, 45.52, -122.68, 632_000),
    city("portland me", UsState::Maine, 43.66, -70.26, 67_000),
    city("bangor", UsState::Maine, 44.80, -68.77, 32_000),
    // Maryland
    city("baltimore", UsState::Maryland, 39.29, -76.61, 622_000),
    city("annapolis", UsState::Maryland, 38.98, -76.49, 39_000),
    city("frederick", UsState::Maryland, 39.41, -77.41, 68_000),
    city("rockville", UsState::Maryland, 39.08, -77.15, 65_000),
    city("bethesda", UsState::Maryland, 38.98, -77.10, 63_000),
    // Massachusetts
    city("boston", UsState::Massachusetts, 42.36, -71.06, 667_000),
    city("worcester", UsState::Massachusetts, 42.26, -71.80, 184_000),
    city(
        "springfield ma",
        UsState::Massachusetts,
        42.10,
        -72.59,
        154_000,
    ),
    city("cambridge", UsState::Massachusetts, 42.37, -71.11, 110_000),
    city("lowell", UsState::Massachusetts, 42.63, -71.32, 110_000),
    // Michigan
    city("detroit", UsState::Michigan, 42.33, -83.05, 677_000),
    city("grand rapids", UsState::Michigan, 42.96, -85.66, 195_000),
    city("ann arbor", UsState::Michigan, 42.28, -83.74, 117_000),
    city("lansing", UsState::Michigan, 42.73, -84.56, 115_000),
    city("flint", UsState::Michigan, 43.01, -83.69, 98_000),
    // Minnesota
    city("minneapolis", UsState::Minnesota, 44.98, -93.27, 410_000),
    city("saint paul", UsState::Minnesota, 44.95, -93.09, 300_000),
    city("duluth", UsState::Minnesota, 46.79, -92.10, 86_000),
    // Mississippi
    city("jackson", UsState::Mississippi, 32.30, -90.18, 170_000),
    city("gulfport", UsState::Mississippi, 30.37, -89.09, 71_000),
    city("biloxi", UsState::Mississippi, 30.40, -88.89, 45_000),
    // Missouri
    city("saint louis", UsState::Missouri, 38.63, -90.20, 315_000),
    city("springfield mo", UsState::Missouri, 37.21, -93.29, 166_000),
    city("independence", UsState::Missouri, 39.09, -94.42, 117_000),
    // Montana
    city("billings", UsState::Montana, 45.78, -108.50, 110_000),
    city("missoula", UsState::Montana, 46.87, -113.99, 71_000),
    city("bozeman", UsState::Montana, 45.68, -111.04, 43_000),
    // Nebraska
    city("omaha", UsState::Nebraska, 41.26, -95.94, 444_000),
    city("lincoln", UsState::Nebraska, 40.81, -96.68, 277_000),
    // Nevada
    city("las vegas", UsState::Nevada, 36.17, -115.14, 624_000),
    city("henderson", UsState::Nevada, 36.04, -114.98, 285_000),
    city("reno", UsState::Nevada, 39.53, -119.81, 241_000),
    // New Hampshire
    city("manchester", UsState::NewHampshire, 42.99, -71.45, 110_000),
    city("concord", UsState::NewHampshire, 43.21, -71.54, 43_000),
    // New Jersey
    city("newark", UsState::NewJersey, 40.74, -74.17, 281_000),
    city("jersey city", UsState::NewJersey, 40.73, -74.08, 264_000),
    city("paterson", UsState::NewJersey, 40.92, -74.17, 147_000),
    city("trenton", UsState::NewJersey, 40.22, -74.76, 84_000),
    city("atlantic city", UsState::NewJersey, 39.36, -74.42, 39_000),
    city("hoboken", UsState::NewJersey, 40.74, -74.03, 54_000),
    // New Mexico
    city("albuquerque", UsState::NewMexico, 35.08, -106.65, 559_000),
    city("santa fe", UsState::NewMexico, 35.69, -105.94, 84_000),
    city("las cruces", UsState::NewMexico, 32.32, -106.77, 101_000),
    // New York
    city("new york", UsState::NewYork, 40.71, -74.01, 8_550_000),
    city("buffalo", UsState::NewYork, 42.89, -78.88, 258_000),
    city("rochester", UsState::NewYork, 43.16, -77.61, 210_000),
    city("yonkers", UsState::NewYork, 40.93, -73.90, 201_000),
    city("syracuse", UsState::NewYork, 43.05, -76.15, 144_000),
    city("albany", UsState::NewYork, 42.65, -73.75, 98_000),
    city("ithaca", UsState::NewYork, 42.44, -76.50, 31_000),
    // North Carolina
    city("charlotte", UsState::NorthCarolina, 35.23, -80.84, 827_000),
    city("raleigh", UsState::NorthCarolina, 35.78, -78.64, 451_000),
    city("greensboro", UsState::NorthCarolina, 36.07, -79.79, 285_000),
    city("durham", UsState::NorthCarolina, 35.99, -78.90, 257_000),
    city(
        "winston-salem",
        UsState::NorthCarolina,
        36.10,
        -80.24,
        241_000,
    ),
    city("asheville", UsState::NorthCarolina, 35.60, -82.55, 89_000),
    // North Dakota
    city("fargo", UsState::NorthDakota, 46.88, -96.79, 118_000),
    city("bismarck", UsState::NorthDakota, 46.81, -100.78, 71_000),
    // Ohio
    city("columbus", UsState::Ohio, 39.96, -83.00, 850_000),
    city("cleveland", UsState::Ohio, 41.50, -81.69, 388_000),
    city("cincinnati", UsState::Ohio, 39.10, -84.51, 298_000),
    city("toledo", UsState::Ohio, 41.65, -83.54, 279_000),
    city("akron", UsState::Ohio, 41.08, -81.52, 197_000),
    city("dayton", UsState::Ohio, 39.76, -84.19, 140_000),
    // Oklahoma
    city("oklahoma city", UsState::Oklahoma, 35.47, -97.52, 631_000),
    city("tulsa", UsState::Oklahoma, 36.15, -95.99, 403_000),
    city("norman", UsState::Oklahoma, 35.22, -97.44, 120_000),
    // Oregon
    city("salem", UsState::Oregon, 44.94, -123.04, 164_000),
    city("eugene", UsState::Oregon, 44.05, -123.09, 164_000),
    city("bend", UsState::Oregon, 44.06, -121.31, 87_000),
    // Pennsylvania
    city(
        "philadelphia",
        UsState::Pennsylvania,
        39.95,
        -75.17,
        1_567_000,
    ),
    city("pittsburgh", UsState::Pennsylvania, 40.44, -79.99, 304_000),
    city("allentown", UsState::Pennsylvania, 40.60, -75.47, 120_000),
    city("erie", UsState::Pennsylvania, 42.13, -80.09, 99_000),
    city("scranton", UsState::Pennsylvania, 41.41, -75.66, 77_000),
    city("harrisburg", UsState::Pennsylvania, 40.27, -76.88, 49_000),
    // Rhode Island
    city("providence", UsState::RhodeIsland, 41.82, -71.41, 179_000),
    city("warwick", UsState::RhodeIsland, 41.70, -71.42, 81_000),
    // South Carolina
    city("columbia", UsState::SouthCarolina, 34.00, -81.03, 133_000),
    city("charleston", UsState::SouthCarolina, 32.78, -79.93, 133_000),
    city("greenville", UsState::SouthCarolina, 34.85, -82.40, 67_000),
    city(
        "myrtle beach",
        UsState::SouthCarolina,
        33.69,
        -78.89,
        31_000,
    ),
    // South Dakota
    city("sioux falls", UsState::SouthDakota, 43.54, -96.73, 171_000),
    city("rapid city", UsState::SouthDakota, 44.08, -103.23, 74_000),
    // Tennessee
    city("memphis", UsState::Tennessee, 35.15, -90.05, 655_000),
    city("nashville", UsState::Tennessee, 36.16, -86.78, 654_000),
    city("knoxville", UsState::Tennessee, 35.96, -83.92, 185_000),
    city("chattanooga", UsState::Tennessee, 35.05, -85.31, 176_000),
    // Texas
    city("houston", UsState::Texas, 29.76, -95.37, 2_296_000),
    city("san antonio", UsState::Texas, 29.42, -98.49, 1_469_000),
    city("dallas", UsState::Texas, 32.78, -96.80, 1_300_000),
    city("austin", UsState::Texas, 30.27, -97.74, 931_000),
    city("fort worth", UsState::Texas, 32.76, -97.33, 833_000),
    city("el paso", UsState::Texas, 31.76, -106.49, 681_000),
    city("arlington", UsState::Texas, 32.74, -97.11, 388_000),
    city("corpus christi", UsState::Texas, 27.80, -97.40, 324_000),
    city("plano", UsState::Texas, 33.02, -96.70, 284_000),
    city("laredo", UsState::Texas, 27.53, -99.49, 255_000),
    city("lubbock", UsState::Texas, 33.58, -101.86, 249_000),
    city("waco", UsState::Texas, 31.55, -97.15, 132_000),
    city("galveston", UsState::Texas, 29.30, -94.80, 50_000),
    // Utah
    city("salt lake city", UsState::Utah, 40.76, -111.89, 192_000),
    city("provo", UsState::Utah, 40.23, -111.66, 116_000),
    city("ogden", UsState::Utah, 41.22, -111.97, 85_000),
    // Vermont
    city("burlington", UsState::Vermont, 44.48, -73.21, 42_000),
    city("montpelier", UsState::Vermont, 44.26, -72.58, 8_000),
    // Virginia
    city("virginia beach", UsState::Virginia, 36.85, -75.98, 453_000),
    city("norfolk", UsState::Virginia, 36.85, -76.29, 246_000),
    city("chesapeake", UsState::Virginia, 36.77, -76.29, 235_000),
    city("richmond", UsState::Virginia, 37.54, -77.44, 220_000),
    city("arlington va", UsState::Virginia, 38.88, -77.10, 230_000),
    city("alexandria", UsState::Virginia, 38.80, -77.05, 153_000),
    city("charlottesville", UsState::Virginia, 38.03, -78.48, 46_000),
    // Washington
    city("seattle", UsState::Washington, 47.61, -122.33, 684_000),
    city("spokane", UsState::Washington, 47.66, -117.43, 214_000),
    city("tacoma", UsState::Washington, 47.25, -122.44, 207_000),
    city("vancouver", UsState::Washington, 45.64, -122.66, 173_000),
    city("bellevue", UsState::Washington, 47.61, -122.20, 139_000),
    city("olympia", UsState::Washington, 47.04, -122.90, 51_000),
    // West Virginia
    city(
        "charleston wv",
        UsState::WestVirginia,
        38.35,
        -81.63,
        49_000,
    ),
    city("huntington", UsState::WestVirginia, 38.42, -82.45, 48_000),
    city("morgantown", UsState::WestVirginia, 39.63, -79.96, 31_000),
    // Wisconsin
    city("milwaukee", UsState::Wisconsin, 43.04, -87.91, 600_000),
    city("madison", UsState::Wisconsin, 43.07, -89.40, 248_000),
    city("green bay", UsState::Wisconsin, 44.51, -88.01, 105_000),
    // Wyoming
    city("cheyenne", UsState::Wyoming, 41.14, -104.82, 63_000),
    city("casper", UsState::Wyoming, 42.85, -106.33, 60_000),
    // Puerto Rico
    city("san juan", UsState::PuertoRico, 18.47, -66.11, 355_000),
    city("ponce", UsState::PuertoRico, 18.01, -66.61, 146_000),
    // --- Second-tier cities (coverage expansion) ---
    city("auburn", UsState::Alabama, 32.61, -85.48, 63_000),
    city("glendale", UsState::Arizona, 33.54, -112.19, 240_000),
    city("gilbert", UsState::Arizona, 33.35, -111.79, 237_000),
    city("yuma", UsState::Arizona, 32.69, -114.62, 93_000),
    city("jonesboro", UsState::Arkansas, 35.84, -90.70, 74_000),
    city("stockton", UsState::California, 37.96, -121.29, 306_000),
    city("chula vista", UsState::California, 32.64, -117.08, 265_000),
    city("fremont", UsState::California, 37.55, -121.99, 232_000),
    city("glendale", UsState::California, 34.14, -118.25, 201_000),
    city("san mateo", UsState::California, 37.56, -122.33, 103_000),
    city("pueblo", UsState::Colorado, 38.27, -104.61, 110_000),
    city("lakewood", UsState::Colorado, 39.70, -105.08, 154_000),
    city("waterbury", UsState::Connecticut, 41.56, -73.04, 108_000),
    city("new london", UsState::Connecticut, 41.35, -72.10, 27_000),
    city("newark de", UsState::Delaware, 39.68, -75.75, 33_000),
    city("cape coral", UsState::Florida, 26.56, -81.95, 180_000),
    city("pensacola", UsState::Florida, 30.42, -87.22, 53_000),
    city("west palm beach", UsState::Florida, 26.71, -80.05, 106_000),
    city("boca raton", UsState::Florida, 26.37, -80.10, 93_000),
    city("daytona beach", UsState::Florida, 29.21, -81.02, 66_000),
    city("kailua", UsState::Hawaii, 21.40, -157.74, 38_000),
    city("wasilla", UsState::Alaska, 61.58, -149.44, 8_000),
    city("pocatello", UsState::Idaho, 42.87, -112.44, 55_000),
    city("nampa", UsState::Idaho, 43.58, -116.56, 89_000),
    city("champaign", UsState::Illinois, 40.11, -88.24, 86_000),
    city("elgin", UsState::Illinois, 42.04, -88.28, 112_000),
    city("gary", UsState::Indiana, 41.59, -87.35, 77_000),
    city("carmel", UsState::Indiana, 39.98, -86.13, 88_000),
    city("muncie", UsState::Indiana, 40.19, -85.39, 70_000),
    city("sioux city", UsState::Iowa, 42.50, -96.40, 83_000),
    city("waterloo", UsState::Iowa, 42.49, -92.34, 68_000),
    city("salina", UsState::Kansas, 38.84, -97.61, 47_000),
    city("hutchinson", UsState::Kansas, 38.06, -97.93, 41_000),
    city("covington", UsState::Kentucky, 39.08, -84.51, 41_000),
    city("metairie", UsState::Louisiana, 30.00, -90.18, 138_000),
    city("lake charles", UsState::Louisiana, 30.23, -93.22, 77_000),
    city("lewiston", UsState::Maine, 44.10, -70.21, 36_000),
    city("columbia md", UsState::Maryland, 39.20, -76.86, 103_000),
    city("silver spring", UsState::Maryland, 38.99, -77.03, 76_000),
    city("gaithersburg", UsState::Maryland, 39.14, -77.20, 67_000),
    city("new bedford", UsState::Massachusetts, 41.64, -70.93, 95_000),
    city("quincy", UsState::Massachusetts, 42.25, -71.00, 93_000),
    city("salem", UsState::Massachusetts, 42.52, -70.90, 43_000),
    city(
        "sterling heights",
        UsState::Michigan,
        42.58,
        -83.03,
        132_000,
    ),
    city("warren", UsState::Michigan, 42.49, -83.03, 135_000),
    city("kalamazoo", UsState::Michigan, 42.29, -85.59, 76_000),
    city("bloomington mn", UsState::Minnesota, 44.84, -93.30, 85_000),
    city("st cloud", UsState::Minnesota, 45.56, -94.16, 67_000),
    city("hattiesburg", UsState::Mississippi, 31.33, -89.29, 46_000),
    city("columbia", UsState::Missouri, 38.95, -92.33, 119_000),
    city("st joseph", UsState::Missouri, 39.77, -94.85, 77_000),
    city("great falls", UsState::Montana, 47.51, -111.30, 59_000),
    city("helena", UsState::Montana, 46.59, -112.04, 31_000),
    city("grand island", UsState::Nebraska, 40.92, -98.34, 51_000),
    city("sparks", UsState::Nevada, 39.54, -119.75, 93_000),
    city("carson city", UsState::Nevada, 39.16, -119.77, 54_000),
    city("nashua", UsState::NewHampshire, 42.77, -71.47, 87_000),
    city("edison", UsState::NewJersey, 40.52, -74.41, 102_000),
    city("camden", UsState::NewJersey, 39.94, -75.12, 77_000),
    city("elizabeth", UsState::NewJersey, 40.66, -74.21, 128_000),
    city("roswell", UsState::NewMexico, 33.39, -104.52, 48_000),
    city("utica", UsState::NewYork, 43.10, -75.23, 61_000),
    city("white plains", UsState::NewYork, 41.03, -73.76, 58_000),
    city("niagara falls", UsState::NewYork, 43.10, -79.04, 49_000),
    city(
        "fayetteville",
        UsState::NorthCarolina,
        35.05,
        -78.88,
        204_000,
    ),
    city("wilmington", UsState::NorthCarolina, 34.23, -77.95, 115_000),
    city("cary", UsState::NorthCarolina, 35.79, -78.78, 160_000),
    city("grand forks", UsState::NorthDakota, 47.93, -97.03, 57_000),
    city("minot", UsState::NorthDakota, 48.23, -101.30, 49_000),
    city("youngstown", UsState::Ohio, 41.10, -80.65, 65_000),
    city("canton", UsState::Ohio, 40.80, -81.38, 71_000),
    city("broken arrow", UsState::Oklahoma, 36.06, -95.79, 107_000),
    city("lawton", UsState::Oklahoma, 34.60, -98.40, 97_000),
    city("gresham", UsState::Oregon, 45.50, -122.44, 110_000),
    city("medford", UsState::Oregon, 42.33, -122.88, 79_000),
    city("corvallis", UsState::Oregon, 44.56, -123.26, 57_000),
    city("reading", UsState::Pennsylvania, 40.34, -75.93, 88_000),
    city("bethlehem", UsState::Pennsylvania, 40.63, -75.37, 75_000),
    city("lancaster", UsState::Pennsylvania, 40.04, -76.31, 59_000),
    city("cranston", UsState::RhodeIsland, 41.78, -71.44, 81_000),
    city("pawtucket", UsState::RhodeIsland, 41.88, -71.38, 72_000),
    city(
        "north charleston",
        UsState::SouthCarolina,
        32.85,
        -79.97,
        109_000,
    ),
    city("rock hill", UsState::SouthCarolina, 34.92, -81.03, 72_000),
    city("aberdeen", UsState::SouthDakota, 45.46, -98.49, 28_000),
    city("clarksville", UsState::Tennessee, 36.53, -87.36, 150_000),
    city("murfreesboro", UsState::Tennessee, 35.85, -86.39, 126_000),
    city("amarillo", UsState::Texas, 35.19, -101.85, 199_000),
    city("brownsville", UsState::Texas, 25.90, -97.50, 183_000),
    city("mcallen", UsState::Texas, 26.20, -98.23, 141_000),
    city("killeen", UsState::Texas, 31.12, -97.73, 140_000),
    city("midland", UsState::Texas, 32.00, -102.08, 132_000),
    city("abilene", UsState::Texas, 32.45, -99.73, 122_000),
    city("beaumont", UsState::Texas, 30.08, -94.13, 118_000),
    city("denton", UsState::Texas, 33.21, -97.13, 131_000),
    city("orem", UsState::Utah, 40.30, -111.70, 97_000),
    city("st george", UsState::Utah, 37.10, -113.58, 80_000),
    city("rutland", UsState::Vermont, 43.61, -72.97, 16_000),
    city("newport news", UsState::Virginia, 36.98, -76.43, 182_000),
    city("hampton", UsState::Virginia, 37.03, -76.35, 136_000),
    city("roanoke", UsState::Virginia, 37.27, -79.94, 99_000),
    city("lynchburg", UsState::Virginia, 37.41, -79.14, 80_000),
    city("everett", UsState::Washington, 47.98, -122.20, 108_000),
    city("kent", UsState::Washington, 47.38, -122.23, 127_000),
    city("renton", UsState::Washington, 47.48, -122.22, 100_000),
    city("yakima", UsState::Washington, 46.60, -120.51, 93_000),
    city("parkersburg", UsState::WestVirginia, 39.27, -81.56, 30_000),
    city("wheeling", UsState::WestVirginia, 40.06, -80.72, 27_000),
    city("kenosha", UsState::Wisconsin, 42.58, -87.82, 100_000),
    city("racine", UsState::Wisconsin, 42.73, -87.78, 78_000),
    city("appleton", UsState::Wisconsin, 44.26, -88.41, 74_000),
    city("eau claire", UsState::Wisconsin, 44.81, -91.50, 68_000),
    city("laramie", UsState::Wyoming, 41.31, -105.59, 32_000),
    city("gillette", UsState::Wyoming, 44.29, -105.50, 32_000),
    city("bayamon", UsState::PuertoRico, 18.40, -66.15, 180_000),
    city("caguas", UsState::PuertoRico, 18.23, -66.04, 131_000),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_state_has_at_least_one_city() {
        for &s in UsState::ALL {
            assert!(
                CITIES.iter().any(|c| c.state == s),
                "{} has no gazetteer city",
                s.name()
            );
        }
    }

    #[test]
    fn city_coordinates_inside_state_bbox() {
        for c in CITIES {
            assert!(
                c.state.bounding_box().contains(c.lat, c.lon),
                "{} not inside {} bbox",
                c.name,
                c.state.name()
            );
        }
    }

    #[test]
    fn names_are_lowercase() {
        for c in CITIES {
            assert_eq!(c.name, c.name.to_lowercase(), "{}", c.name);
        }
    }

    #[test]
    fn duplicate_names_span_states() {
        // Intended homonyms: each duplicated name must appear in distinct
        // states (population ranking handles the ambiguity).
        use std::collections::HashMap;
        let mut by_name: HashMap<&str, Vec<UsState>> = HashMap::new();
        for c in CITIES {
            by_name.entry(c.name).or_default().push(c.state);
        }
        for (name, states) in by_name {
            let unique: std::collections::HashSet<_> = states.iter().collect();
            assert_eq!(
                unique.len(),
                states.len(),
                "{name} duplicated within a state"
            );
        }
    }

    #[test]
    fn known_homonyms_prefer_largest() {
        let columbus: Vec<&City> = CITIES.iter().filter(|c| c.name == "columbus").collect();
        assert_eq!(columbus.len(), 2);
        let best = columbus.iter().max_by_key(|c| c.population).unwrap();
        assert_eq!(best.state, UsState::Ohio);
    }
}
