//! The gazetteer: indexed lookup over states, cities, aliases, and
//! non-US / junk markers.
//!
//! This is the offline stand-in for the OpenStreetMap lookups the paper
//! performs on the self-reported profile location. Construction compiles
//! the embedded tables into hash indexes and Aho–Corasick automata once;
//! lookups are then cheap enough to run over hundreds of thousands of
//! profiles.

use crate::data::{City, ALIASES, CITIES, JUNK_MARKERS, NON_US_MARKERS};
use crate::state::UsState;
use donorpulse_text::matcher::AhoCorasick;
use std::collections::HashMap;

/// Compiled lookup structures over the embedded geography data.
#[derive(Debug)]
pub struct Gazetteer {
    city_by_name: HashMap<&'static str, Vec<&'static City>>,
    alias_by_name: HashMap<&'static str, UsState>,
    state_name_automaton: AhoCorasick,
    state_of_name_pattern: Vec<UsState>,
    city_automaton: AhoCorasick,
    city_of_pattern: Vec<&'static City>,
    non_us_automaton: AhoCorasick,
    junk_exact: HashMap<&'static str, ()>,
}

impl Default for Gazetteer {
    fn default() -> Self {
        Self::new()
    }
}

impl Gazetteer {
    /// Compiles the embedded tables.
    pub fn new() -> Self {
        let mut city_by_name: HashMap<&'static str, Vec<&'static City>> = HashMap::new();
        for c in CITIES {
            city_by_name.entry(c.name).or_default().push(c);
        }
        // Highest population first, so index 0 is the canonical resolution.
        for list in city_by_name.values_mut() {
            list.sort_by_key(|c| std::cmp::Reverse(c.population));
        }

        let alias_by_name: HashMap<&'static str, UsState> = ALIASES.iter().copied().collect();

        let mut state_patterns = Vec::with_capacity(UsState::COUNT);
        let mut state_of_name_pattern = Vec::with_capacity(UsState::COUNT);
        for &s in UsState::ALL {
            state_patterns.push(s.name().to_lowercase());
            state_of_name_pattern.push(s);
        }

        let mut city_patterns = Vec::with_capacity(CITIES.len());
        let mut city_of_pattern = Vec::with_capacity(CITIES.len());
        for c in CITIES {
            city_patterns.push(c.name);
            city_of_pattern.push(c);
        }

        Self {
            city_by_name,
            alias_by_name,
            state_name_automaton: AhoCorasick::new(state_patterns),
            state_of_name_pattern,
            city_automaton: AhoCorasick::new(city_patterns),
            city_of_pattern,
            non_us_automaton: AhoCorasick::new(NON_US_MARKERS.iter().copied()),
            junk_exact: JUNK_MARKERS.iter().map(|&m| (m, ())).collect(),
        }
    }

    /// Exact city lookup (normalized name). Homonyms resolve to the most
    /// populous city, matching real-geocoder prominence ranking.
    pub fn city_exact(&self, name: &str) -> Option<&'static City> {
        self.city_by_name.get(name).map(|v| v[0])
    }

    /// Exact city lookup constrained to a state (for "city, ST" inputs
    /// where the abbreviation pins the state).
    pub fn city_in_state(&self, name: &str, state: UsState) -> Option<&'static City> {
        self.city_by_name
            .get(name)?
            .iter()
            .find(|c| c.state == state)
            .copied()
    }

    /// Exact alias lookup.
    pub fn alias_exact(&self, name: &str) -> Option<UsState> {
        self.alias_by_name.get(name).copied()
    }

    /// Distinct states whose *full name* occurs (whole-word) in `text`,
    /// in first-occurrence order.
    pub fn state_names_in(&self, text: &str) -> Vec<UsState> {
        self.state_name_automaton
            .matched_patterns(text)
            .into_iter()
            .map(|i| self.state_of_name_pattern[i])
            .collect()
    }

    /// Cities whose name occurs (whole-word) in `text`, most populous
    /// first.
    pub fn cities_in(&self, text: &str) -> Vec<&'static City> {
        let mut found: Vec<&'static City> = self
            .city_automaton
            .matched_patterns(text)
            .into_iter()
            .map(|i| self.city_of_pattern[i])
            .collect();
        found.sort_by_key(|c| std::cmp::Reverse(c.population));
        found
    }

    /// True when a non-US marker occurs (whole-word) in `text`.
    pub fn mentions_non_us(&self, text: &str) -> bool {
        self.non_us_automaton.contains_word(text)
    }

    /// True when `text` (already trimmed/normalized) is a junk non-place.
    pub fn is_junk(&self, text: &str) -> bool {
        self.junk_exact.contains_key(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gz() -> Gazetteer {
        Gazetteer::new()
    }

    #[test]
    fn city_exact_prefers_population() {
        let g = gz();
        assert_eq!(g.city_exact("columbus").unwrap().state, UsState::Ohio);
        assert_eq!(g.city_exact("portland").unwrap().state, UsState::Oregon);
        assert_eq!(g.city_exact("aurora").unwrap().state, UsState::Colorado);
        assert_eq!(
            g.city_exact("kansas city").unwrap().state,
            UsState::Missouri
        );
        assert!(g.city_exact("gotham").is_none());
    }

    #[test]
    fn city_in_state_pins_homonyms() {
        let g = gz();
        assert_eq!(
            g.city_in_state("columbus", UsState::Georgia).unwrap().state,
            UsState::Georgia
        );
        assert_eq!(
            g.city_in_state("aurora", UsState::Illinois).unwrap().state,
            UsState::Illinois
        );
        assert!(g.city_in_state("columbus", UsState::Texas).is_none());
    }

    #[test]
    fn alias_lookup() {
        let g = gz();
        assert_eq!(g.alias_exact("nyc"), Some(UsState::NewYork));
        assert_eq!(g.alias_exact("vegas"), Some(UsState::Nevada));
        assert_eq!(g.alias_exact("notanalias"), None);
    }

    #[test]
    fn state_names_found_in_text() {
        let g = gz();
        assert_eq!(g.state_names_in("sunny kansas farm"), vec![UsState::Kansas]);
        assert_eq!(
            g.state_names_in("from texas to ohio"),
            vec![UsState::Texas, UsState::Ohio]
        );
        // Embedded names don't fire.
        assert!(g.state_names_in("arkansasx").is_empty());
        // "district of columbia" is a single state-name match.
        assert_eq!(
            g.state_names_in("district of columbia"),
            vec![UsState::DistrictOfColumbia]
        );
    }

    #[test]
    fn cities_found_in_text_ranked() {
        let g = gz();
        let cities = g.cities_in("between chicago and boise");
        assert_eq!(cities[0].name, "chicago");
        assert_eq!(cities[1].name, "boise");
    }

    #[test]
    fn non_us_detection() {
        let g = gz();
        assert!(g.mentions_non_us("london"));
        assert!(g.mentions_non_us("living in tokyo now"));
        assert!(!g.mentions_non_us("londonderry street"));
        assert!(!g.mentions_non_us("wichita"));
    }

    #[test]
    fn junk_detection() {
        let g = gz();
        assert!(g.is_junk("earth"));
        assert!(g.is_junk("the moon"));
        assert!(!g.is_junk("earthly paradise"));
        assert!(!g.is_junk("boston"));
    }
}
