//! A fallible, latency-carrying geocoding *service* interface.
//!
//! The in-process [`Geocoder`] never fails and answers instantly, but a
//! production pipeline calls geocoding as an enrichment service —
//! Twitter-Demographer-style — that times out, throws transient errors,
//! and goes down for whole windows. [`LocationService`] abstracts both:
//! the plain [`Geocoder`] implements it infallibly, while
//! [`FlakyGeocoder`] wraps one with a seeded failure/latency schedule so
//! the streaming consumer's retry, backoff and park-queue machinery can
//! be exercised deterministically.
//!
//! Latency is *virtual*: responses carry a simulated cost in
//! milliseconds that the consumer adds to its
//! [`VirtualClock`](https://docs.rs/donorpulse-twitter) — no real
//! sleeping happens anywhere.

use crate::geocode::{Geocoder, Located};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Why a [`LocationService`] call failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeoServiceError {
    /// The request timed out after waiting `waited_ms` (virtual).
    Timeout {
        /// Virtual milliseconds spent waiting before giving up.
        waited_ms: u64,
    },
    /// The service refused the request (transient 5xx / outage).
    Unavailable,
}

impl fmt::Display for GeoServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoServiceError::Timeout { waited_ms } => {
                write!(f, "geocoding request timed out after {waited_ms}ms")
            }
            GeoServiceError::Unavailable => write!(f, "geocoding service unavailable"),
        }
    }
}

impl std::error::Error for GeoServiceError {}

/// A successful service response: the resolution plus its virtual cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceResponse {
    /// The location resolution.
    pub located: Located,
    /// Simulated service latency in milliseconds.
    pub latency_ms: u64,
}

/// Geocoding as a remote-service call: fallible and latency-carrying.
pub trait LocationService {
    /// Locates a user from an optional profile string and an optional
    /// tweet geo-tag (the paper's geotag-over-profile precedence).
    fn locate_user(
        &self,
        profile: Option<&str>,
        geo: Option<(f64, f64)>,
    ) -> Result<ServiceResponse, GeoServiceError>;
}

impl LocationService for Geocoder {
    /// The in-process geocoder: infallible, zero latency.
    fn locate_user(
        &self,
        profile: Option<&str>,
        geo: Option<(f64, f64)>,
    ) -> Result<ServiceResponse, GeoServiceError> {
        Ok(ServiceResponse {
            located: self.locate(profile, geo),
            latency_ms: 0,
        })
    }
}

/// Domain tag for transient-error draws.
const DOMAIN_ERROR: u64 = 0x6e0_5e1f_0000_0001;
/// Domain tag for timeout draws.
const DOMAIN_TIMEOUT: u64 = 0x6e0_5e1f_0000_0002;
/// Domain tag for latency-spike draws.
const DOMAIN_SPIKE: u64 = 0x6e0_5e1f_0000_0003;
/// Domain tag for deriving per-shard schedule seeds.
const DOMAIN_SHARD: u64 = 0x6e0_5e1f_0000_0004;

/// SplitMix64 finalizer (local: this crate has no rand dependency).
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Pure Bernoulli draw on `(seed, domain, call index)`.
fn chance(seed: u64, domain: u64, index: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    let z = splitmix(splitmix(seed ^ domain) ^ index);
    ((z >> 11) as f64 / (1u64 << 53) as f64) < rate
}

/// Seeded failure/latency schedule for a [`FlakyGeocoder`].
///
/// All decisions are pure in `(seed, kind, call index)`, where the call
/// index is a monotone counter over `locate_user` invocations — so the
/// same admission sequence always sees the same failures.
#[derive(Debug, Clone)]
pub struct FlakyConfig {
    /// Seed for the failure schedule.
    pub seed: u64,
    /// Probability a call fails with [`GeoServiceError::Unavailable`].
    pub error_rate: f64,
    /// Probability a call fails with [`GeoServiceError::Timeout`].
    pub timeout_rate: f64,
    /// Virtual wait charged by a timeout, in milliseconds.
    pub timeout_ms: u64,
    /// Baseline virtual latency of a successful call.
    pub base_latency_ms: u64,
    /// Probability a successful call is a latency spike.
    pub spike_rate: f64,
    /// Extra virtual latency of a spike, in milliseconds.
    pub spike_latency_ms: u64,
    /// Optional hard outage: every call with index in
    /// `[start, start + calls)` fails `Unavailable`. `calls` of
    /// `u64::MAX` models an outage that never ends.
    pub outage_start: Option<u64>,
    /// Length of the outage window, in calls.
    pub outage_calls: u64,
}

impl FlakyConfig {
    /// A perfectly reliable service with fixed small latency.
    pub fn reliable() -> Self {
        FlakyConfig {
            seed: 0,
            error_rate: 0.0,
            timeout_rate: 0.0,
            timeout_ms: 1_000,
            base_latency_ms: 3,
            spike_rate: 0.0,
            spike_latency_ms: 400,
            outage_start: None,
            outage_calls: 0,
        }
    }

    /// Transient errors, timeouts and latency spikes, but no outage —
    /// every failure is recoverable with enough retries.
    pub fn flaky(seed: u64) -> Self {
        FlakyConfig {
            seed,
            error_rate: 0.10,
            timeout_rate: 0.04,
            spike_rate: 0.02,
            ..FlakyConfig::reliable()
        }
    }

    /// A hard outage window `[start, start + calls)` on top of the
    /// [`FlakyConfig::flaky`] schedule.
    pub fn outage(seed: u64, start: u64, calls: u64) -> Self {
        FlakyConfig {
            outage_start: Some(start),
            outage_calls: calls,
            ..FlakyConfig::flaky(seed)
        }
    }

    /// The schedule shard `shard` of a `shards`-way consumer group
    /// sees: the same rates and outage window, re-seeded per shard so
    /// each shard's failure schedule is pure in *its own* call counter.
    ///
    /// A consumer group sharing one call counter is nondeterministic —
    /// the counter interleaving depends on thread/process scheduling —
    /// so sharded runs give every shard an independent schedule keyed
    /// on `(group seed, shard index)`. A single-shard group keeps the
    /// group seed untouched, which is what makes `--shards 1` (and a
    /// 1-process group) byte-identical to the unsharded path in every
    /// fault mode.
    pub fn for_shard(&self, shard: usize, shards: usize) -> Self {
        if shards <= 1 {
            return self.clone();
        }
        FlakyConfig {
            seed: splitmix(self.seed ^ DOMAIN_SHARD ^ (shard as u64)),
            ..self.clone()
        }
    }
}

/// A [`LocationService`] wrapping the in-process [`Geocoder`] with a
/// seeded failure and latency schedule.
///
/// ```
/// use donorpulse_geo::service::{FlakyConfig, FlakyGeocoder, LocationService};
/// use donorpulse_geo::{Geocoder, UsState};
///
/// let geocoder = Geocoder::new();
/// let service = FlakyGeocoder::new(&geocoder, FlakyConfig::reliable());
/// let resp = service.locate_user(Some("Wichita, KS"), None).unwrap();
/// assert_eq!(resp.located.state, Some(UsState::Kansas));
/// assert_eq!(service.calls(), 1);
/// ```
#[derive(Debug)]
pub struct FlakyGeocoder<'a> {
    inner: &'a Geocoder,
    config: FlakyConfig,
    calls: AtomicU64,
    transient_errors: AtomicU64,
    timeouts: AtomicU64,
    spikes: AtomicU64,
    latency_ms: AtomicU64,
}

impl<'a> FlakyGeocoder<'a> {
    /// Wraps a geocoder with a failure schedule.
    pub fn new(inner: &'a Geocoder, config: FlakyConfig) -> Self {
        FlakyGeocoder {
            inner,
            config,
            calls: AtomicU64::new(0),
            transient_errors: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            spikes: AtomicU64::new(0),
            latency_ms: AtomicU64::new(0),
        }
    }

    /// Total `locate_user` calls received.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Calls failed with [`GeoServiceError::Unavailable`] (including
    /// the outage window).
    pub fn transient_errors(&self) -> u64 {
        self.transient_errors.load(Ordering::Relaxed)
    }

    /// Calls failed with [`GeoServiceError::Timeout`].
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Successful calls that were latency spikes.
    pub fn spikes(&self) -> u64 {
        self.spikes.load(Ordering::Relaxed)
    }

    /// Accumulated virtual latency across all calls, in milliseconds.
    pub fn virtual_latency_ms(&self) -> u64 {
        self.latency_ms.load(Ordering::Relaxed)
    }
}

impl LocationService for FlakyGeocoder<'_> {
    fn locate_user(
        &self,
        profile: Option<&str>,
        geo: Option<(f64, f64)>,
    ) -> Result<ServiceResponse, GeoServiceError> {
        let i = self.calls.fetch_add(1, Ordering::Relaxed);
        if let Some(start) = self.config.outage_start {
            let in_outage = i >= start && i.saturating_sub(start) < self.config.outage_calls;
            if in_outage {
                self.transient_errors.fetch_add(1, Ordering::Relaxed);
                return Err(GeoServiceError::Unavailable);
            }
        }
        if chance(
            self.config.seed,
            DOMAIN_TIMEOUT,
            i,
            self.config.timeout_rate,
        ) {
            self.timeouts.fetch_add(1, Ordering::Relaxed);
            self.latency_ms
                .fetch_add(self.config.timeout_ms, Ordering::Relaxed);
            return Err(GeoServiceError::Timeout {
                waited_ms: self.config.timeout_ms,
            });
        }
        if chance(self.config.seed, DOMAIN_ERROR, i, self.config.error_rate) {
            self.transient_errors.fetch_add(1, Ordering::Relaxed);
            return Err(GeoServiceError::Unavailable);
        }
        let mut latency = self.config.base_latency_ms;
        if chance(self.config.seed, DOMAIN_SPIKE, i, self.config.spike_rate) {
            self.spikes.fetch_add(1, Ordering::Relaxed);
            latency += self.config.spike_latency_ms;
        }
        self.latency_ms.fetch_add(latency, Ordering::Relaxed);
        Ok(ServiceResponse {
            located: self.inner.locate(profile, geo),
            latency_ms: latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::UsState;

    #[test]
    fn plain_geocoder_is_infallible_service() {
        let g = Geocoder::new();
        let resp = g.locate_user(Some("Wichita, KS"), None).unwrap();
        assert_eq!(resp.located.state, Some(UsState::Kansas));
        assert_eq!(resp.latency_ms, 0);
    }

    #[test]
    fn flaky_schedule_is_deterministic_and_transient() {
        let g = Geocoder::new();
        let run = || {
            let s = FlakyGeocoder::new(&g, FlakyConfig::flaky(7));
            let outcomes: Vec<bool> = (0..500)
                .map(|_| s.locate_user(Some("NYC"), None).is_ok())
                .collect();
            (outcomes, s.transient_errors(), s.timeouts(), s.spikes())
        };
        let (a, errs, touts, spikes) = run();
        let (b, ..) = run();
        assert_eq!(a, b, "failure schedule not deterministic");
        assert!(errs > 0, "no transient errors in 500 calls");
        assert!(touts > 0, "no timeouts in 500 calls");
        assert!(spikes > 0, "no spikes in 500 calls");
        assert!(a.iter().any(|ok| *ok), "service never succeeded");
    }

    #[test]
    fn outage_window_fails_exactly_its_calls() {
        let g = Geocoder::new();
        let s = FlakyGeocoder::new(&g, {
            let mut c = FlakyConfig::reliable();
            c.outage_start = Some(3);
            c.outage_calls = 4;
            c
        });
        let outcomes: Vec<bool> = (0..10)
            .map(|_| s.locate_user(Some("NYC"), None).is_ok())
            .collect();
        assert_eq!(
            outcomes,
            vec![true, true, true, false, false, false, false, true, true, true]
        );
    }

    #[test]
    fn endless_outage_never_recovers() {
        let g = Geocoder::new();
        let s = FlakyGeocoder::new(&g, FlakyConfig::outage(7, 2, u64::MAX));
        let ok: Vec<bool> = (0..50)
            .map(|_| s.locate_user(Some("NYC"), None).is_ok())
            .collect();
        assert!(ok[2..].iter().all(|o| !o), "outage ended");
    }

    #[test]
    fn timeout_and_latency_accumulate_virtually() {
        let g = Geocoder::new();
        let s = FlakyGeocoder::new(&g, FlakyConfig::reliable());
        for _ in 0..5 {
            s.locate_user(Some("NYC"), None).unwrap();
        }
        assert_eq!(s.virtual_latency_ms(), 5 * 3);
        assert_eq!(s.calls(), 5);
    }
}
