//! The [`Geocoder`] facade: the paper's location-augmentation step.
//!
//! Section III-A of the paper augments each tweet with a location using
//! either the tweet geo-tag (precise but rare, ~1.4%) or the self-reported
//! profile location (abundant but noisy), then filters to USA users.
//! `Geocoder` implements exactly that precedence and classification.
//!
//! Profile-string parsing is memoized: real profile locations follow a
//! heavy-tailed distribution (thousands of users write "NYC"), so the
//! geocoder caches each raw string's [`ParseOutcome`] and answers
//! repeats from the cache. [`Geocoder::cache_hits`] exposes the hit
//! count for the pipeline's `geo_cache_hits_total` counter.

use crate::gazetteer::Gazetteer;
use crate::parse::{parse_location, ParseOutcome};
use crate::point::state_of_point;
use crate::state::UsState;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Which signal located a user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocationSource {
    /// GPS coordinates attached to a tweet.
    GeoTag,
    /// Parsed self-reported profile location.
    Profile,
    /// Nothing usable.
    Unlocated,
}

/// The result of locating one user.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Located {
    /// Resolved US state, `None` for non-US or unknown users.
    pub state: Option<UsState>,
    /// The signal that produced the resolution.
    pub source: LocationSource,
    /// True when the user is confidently outside the USA (as opposed to
    /// merely unresolvable).
    pub non_us: bool,
}

/// Offline geocoder: compiled gazetteer plus resolution policy.
///
/// ```
/// use donorpulse_geo::{Geocoder, UsState};
///
/// let geocoder = Geocoder::new();
/// // Profile string alone:
/// let l = geocoder.locate(Some("Wichita, KS"), None);
/// assert_eq!(l.state, Some(UsState::Kansas));
/// // A geotag outranks the profile:
/// let l = geocoder.locate(Some("NYC"), Some((37.69, -97.34)));
/// assert_eq!(l.state, Some(UsState::Kansas));
/// // Repeats of a raw profile string are answered from the memo cache:
/// let _ = geocoder.locate(Some("Wichita, KS"), None);
/// assert!(geocoder.cache_hits() >= 1);
/// ```
#[derive(Debug, Default)]
pub struct Geocoder {
    gazetteer: Gazetteer,
    /// Memoized parse outcomes per raw profile string. Behind a mutex
    /// because `locate` takes `&self` (a `Geocoder` is shared freely);
    /// parsing a string is pure, so memoization never changes results.
    profile_cache: Mutex<HashMap<String, ParseOutcome>>,
    /// Lookups answered from `profile_cache`.
    cache_hits: AtomicU64,
}

impl Geocoder {
    /// Builds the geocoder (compiles the embedded gazetteer).
    pub fn new() -> Self {
        Self {
            gazetteer: Gazetteer::new(),
            profile_cache: Mutex::new(HashMap::new()),
            cache_hits: AtomicU64::new(0),
        }
    }

    /// Access to the underlying gazetteer.
    pub fn gazetteer(&self) -> &Gazetteer {
        &self.gazetteer
    }

    /// Resolves a profile location string, answering repeated raw
    /// strings from the memo cache.
    pub fn resolve_profile(&self, location: &str) -> ParseOutcome {
        let mut cache = self.profile_cache.lock().expect("cache lock");
        if let Some(outcome) = cache.get(location) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return *outcome;
        }
        let outcome = parse_location(&self.gazetteer, location);
        cache.insert(location.to_string(), outcome);
        outcome
    }

    /// Profile lookups answered from the memo cache since this geocoder
    /// was built (feeds the pipeline's `geo_cache_hits_total` counter).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Distinct profile strings currently memoized.
    pub fn cache_len(&self) -> usize {
        self.profile_cache.lock().expect("cache lock").len()
    }

    /// Resolves a GPS coordinate.
    pub fn resolve_point(&self, lat: f64, lon: f64) -> Option<UsState> {
        state_of_point(lat, lon)
    }

    /// Locates a user with the paper's precedence: geo-tag first, then
    /// the profile string.
    ///
    /// A geo-tag outside the USA marks the user non-US immediately (the
    /// coordinates are ground truth); otherwise the profile is consulted.
    pub fn locate(&self, profile_location: Option<&str>, geo: Option<(f64, f64)>) -> Located {
        if let Some((lat, lon)) = geo {
            match self.resolve_point(lat, lon) {
                Some(state) => {
                    return Located {
                        state: Some(state),
                        source: LocationSource::GeoTag,
                        non_us: false,
                    }
                }
                None if lat.is_finite() && lon.is_finite() => {
                    return Located {
                        state: None,
                        source: LocationSource::GeoTag,
                        non_us: true,
                    }
                }
                None => {}
            }
        }
        match profile_location.map(|loc| self.resolve_profile(loc)) {
            Some(ParseOutcome::Resolved { state, .. }) => Located {
                state: Some(state),
                source: LocationSource::Profile,
                non_us: false,
            },
            Some(ParseOutcome::NonUs) => Located {
                state: None,
                source: LocationSource::Profile,
                non_us: true,
            },
            Some(ParseOutcome::Unknown) | None => Located {
                state: None,
                source: LocationSource::Unlocated,
                non_us: false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geotag_outranks_profile() {
        let g = Geocoder::new();
        // Profile says NYC, GPS says Wichita — GPS wins.
        let l = g.locate(Some("NYC"), Some((37.69, -97.34)));
        assert_eq!(l.state, Some(UsState::Kansas));
        assert_eq!(l.source, LocationSource::GeoTag);
        assert!(!l.non_us);
    }

    #[test]
    fn foreign_geotag_is_non_us_even_with_us_profile() {
        let g = Geocoder::new();
        let l = g.locate(Some("Boston, MA"), Some((51.5, -0.1)));
        assert_eq!(l.state, None);
        assert!(l.non_us);
        assert_eq!(l.source, LocationSource::GeoTag);
    }

    #[test]
    fn profile_used_without_geotag() {
        let g = Geocoder::new();
        let l = g.locate(Some("Wichita, KS"), None);
        assert_eq!(l.state, Some(UsState::Kansas));
        assert_eq!(l.source, LocationSource::Profile);
    }

    #[test]
    fn non_us_profile() {
        let g = Geocoder::new();
        let l = g.locate(Some("London"), None);
        assert_eq!(l.state, None);
        assert!(l.non_us);
    }

    #[test]
    fn nothing_resolvable() {
        let g = Geocoder::new();
        for l in [
            g.locate(None, None),
            g.locate(Some(""), None),
            g.locate(Some("earth"), None),
        ] {
            assert_eq!(l.state, None);
            assert_eq!(l.source, LocationSource::Unlocated);
            assert!(!l.non_us);
        }
    }

    #[test]
    fn invalid_geotag_falls_back_to_profile() {
        let g = Geocoder::new();
        let l = g.locate(Some("Denver, CO"), Some((f64::NAN, f64::NAN)));
        assert_eq!(l.state, Some(UsState::Colorado));
        assert_eq!(l.source, LocationSource::Profile);
    }

    #[test]
    fn repeated_profiles_hit_the_cache_with_identical_outcomes() {
        let g = Geocoder::new();
        assert_eq!(g.cache_hits(), 0);
        let first = g.locate(Some("Wichita, KS"), None);
        assert_eq!(g.cache_hits(), 0);
        assert_eq!(g.cache_len(), 1);
        for _ in 0..3 {
            assert_eq!(g.locate(Some("Wichita, KS"), None), first);
        }
        assert_eq!(g.cache_hits(), 3);
        assert_eq!(g.cache_len(), 1);
        // A different string is a miss, not a hit.
        let other = g.locate(Some("London"), None);
        assert_eq!(g.cache_hits(), 3);
        assert_eq!(g.cache_len(), 2);
        assert!(other.non_us);
        // Unknown outcomes are memoized too.
        let _ = g.locate(Some("earth"), None);
        let _ = g.locate(Some("earth"), None);
        assert_eq!(g.cache_hits(), 4);
    }

    #[test]
    fn geotag_resolution_bypasses_the_cache() {
        let g = Geocoder::new();
        let _ = g.locate(Some("NYC"), Some((37.69, -97.34)));
        assert_eq!(g.cache_len(), 0, "geo-tag path must not touch profiles");
    }
}
