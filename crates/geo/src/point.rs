//! GPS `(lat, lon)` → state resolution.
//!
//! About 1.4% of tweets carry GPS coordinates (Morstatter et al., cited
//! by the paper); when present they outrank the profile string. States
//! are resolved by bounding-box containment; where boxes overlap (they
//! are rectangles over non-rectangular states), the tie is broken by the
//! nearest *gazetteer city* among the candidate states — the same
//! populated-place snapping a reverse geocoder performs — falling back to
//! the nearest state centroid when no city is close.

use crate::data::CITIES;
use crate::state::UsState;

/// Squared equirectangular distance in degree units, with longitude
/// scaled by `cos(lat)` so east-west degrees weigh the same as
/// north-south ones at this latitude.
fn dist2(lat: f64, lon: f64, plat: f64, plon: f64) -> f64 {
    let coslat = lat.to_radians().cos();
    let dlat = lat - plat;
    let dlon = (lon - plon) * coslat;
    dlat * dlat + dlon * dlon
}

/// Resolves a coordinate to the US state containing it, or `None` when
/// the point is outside every state's bounding box.
pub fn state_of_point(lat: f64, lon: f64) -> Option<UsState> {
    if !lat.is_finite() || !lon.is_finite() {
        return None;
    }
    let candidates: Vec<UsState> = UsState::ALL
        .iter()
        .copied()
        .filter(|s| s.bounding_box().contains(lat, lon))
        .collect();
    match candidates.as_slice() {
        [] => None,
        [only] => Some(*only),
        _ => {
            // Snap to the nearest gazetteer city of a candidate state…
            let nearest_city = CITIES
                .iter()
                .filter(|c| candidates.contains(&c.state))
                .map(|c| (c.state, dist2(lat, lon, c.lat, c.lon)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
            // …unless every city is far (> ~2° ≈ 220 km), in which case
            // the nearest centroid is the safer signal.
            match nearest_city {
                Some((state, d2)) if d2 < 4.0 => Some(state),
                _ => candidates
                    .into_iter()
                    .map(|s| {
                        let (clat, clon) = s.centroid();
                        (s, dist2(lat, lon, clat, clon))
                    })
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
                    .map(|(s, _)| s),
            }
        }
    }
}

/// Reverse geocoding to the nearest gazetteer city: returns the closest
/// [`crate::data::City`] when one lies within `max_degrees`
/// (equirectangular), mirroring the populated-place snapping of a real
/// reverse geocoder.
pub fn nearest_city(lat: f64, lon: f64, max_degrees: f64) -> Option<&'static crate::data::City> {
    if !lat.is_finite() || !lon.is_finite() || max_degrees <= 0.0 {
        return None;
    }
    CITIES
        .iter()
        .map(|c| (c, dist2(lat, lon, c.lat, c.lon)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
        .filter(|&(_, d2)| d2 <= max_degrees * max_degrees)
        .map(|(c, _)| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_centroids_resolve_to_themselves() {
        for &s in UsState::ALL {
            let (lat, lon) = s.centroid();
            assert_eq!(state_of_point(lat, lon), Some(s), "{}", s.name());
        }
    }

    #[test]
    fn known_cities_resolve() {
        // Wichita, KS.
        assert_eq!(state_of_point(37.69, -97.34), Some(UsState::Kansas));
        // Boston, MA.
        assert_eq!(state_of_point(42.36, -71.06), Some(UsState::Massachusetts));
        // New Orleans, LA.
        assert_eq!(state_of_point(29.95, -90.07), Some(UsState::Louisiana));
        // Honolulu, HI.
        assert_eq!(state_of_point(21.31, -157.86), Some(UsState::Hawaii));
        // San Juan, PR.
        assert_eq!(state_of_point(18.47, -66.11), Some(UsState::PuertoRico));
    }

    #[test]
    fn gazetteer_cities_resolve_to_their_state() {
        // Bounding boxes overlap, so nearest-centroid tie-breaks can be
        // imperfect near borders; require ≥90% agreement and exact
        // agreement away from boxes' shared edges.
        let mut agree = 0usize;
        let mut total = 0usize;
        let mut misses = Vec::new();
        for c in crate::data::CITIES {
            total += 1;
            if state_of_point(c.lat, c.lon) == Some(c.state) {
                agree += 1;
            } else {
                misses.push(format!(
                    "{} ({}, {}) -> {:?}",
                    c.name,
                    c.lat,
                    c.lon,
                    state_of_point(c.lat, c.lon).map(|s| s.abbr())
                ));
            }
        }
        assert!(
            agree * 10 >= total * 9,
            "only {agree}/{total} cities resolve to their own state: {misses:?}"
        );
    }

    #[test]
    fn ocean_and_foreign_points_unresolved() {
        // Mid-Atlantic.
        assert_eq!(state_of_point(30.0, -50.0), None);
        // London.
        assert_eq!(state_of_point(51.5, -0.1), None);
        // Sydney.
        assert_eq!(state_of_point(-33.9, 151.2), None);
    }

    #[test]
    fn nearest_city_snaps_and_bounds() {
        // Right on Wichita.
        let c = nearest_city(37.69, -97.34, 0.5).unwrap();
        assert_eq!(c.name, "wichita");
        // Slightly offset still snaps.
        let c = nearest_city(37.75, -97.30, 0.5).unwrap();
        assert_eq!(c.name, "wichita");
        // Mid-ocean: nothing within range.
        assert!(nearest_city(30.0, -50.0, 2.0).is_none());
        // Degenerate radius.
        assert!(nearest_city(37.69, -97.34, 0.0).is_none());
        assert!(nearest_city(f64::NAN, 0.0, 1.0).is_none());
    }

    #[test]
    fn non_finite_rejected() {
        assert_eq!(state_of_point(f64::NAN, -97.0), None);
        assert_eq!(state_of_point(40.0, f64::INFINITY), None);
    }
}
