//! State adjacency — the contiguity structure behind spatial analyses.
//!
//! The paper motivates "identify\[ing\] clustering of well-defined borders
//! of adjacent regions and geographic anomalies" (Sec. IV-B.1) and cites
//! regional patterns like the Stroke Belt. Answering those questions
//! formally (e.g. with a join-count statistic or Moran's I) requires the
//! state contiguity graph, embedded here as a symmetric edge list over
//! land borders. Corner-only touches (Arizona–Colorado, New
//! Mexico–Utah at Four Corners) are excluded, the usual convention.
//! Alaska, Hawaii and Puerto Rico have no neighbors.

use crate::state::UsState;

/// Symmetric land-border adjacency, stored once per unordered pair
/// (lexicographic by variant order).
const EDGES: &[(UsState, UsState)] = {
    use UsState::*;
    &[
        (Alabama, Florida),
        (Alabama, Georgia),
        (Alabama, Mississippi),
        (Alabama, Tennessee),
        (Arizona, California),
        (Arizona, Nevada),
        (Arizona, NewMexico),
        (Arizona, Utah),
        (Arkansas, Louisiana),
        (Arkansas, Mississippi),
        (Arkansas, Missouri),
        (Arkansas, Oklahoma),
        (Arkansas, Tennessee),
        (Arkansas, Texas),
        (California, Nevada),
        (California, Oregon),
        (Colorado, Kansas),
        (Colorado, Nebraska),
        (Colorado, NewMexico),
        (Colorado, Oklahoma),
        (Colorado, Utah),
        (Colorado, Wyoming),
        (Connecticut, Massachusetts),
        (Connecticut, NewYork),
        (Connecticut, RhodeIsland),
        (Delaware, Maryland),
        (Delaware, NewJersey),
        (Delaware, Pennsylvania),
        (DistrictOfColumbia, Maryland),
        (DistrictOfColumbia, Virginia),
        (Florida, Georgia),
        (Georgia, NorthCarolina),
        (Georgia, SouthCarolina),
        (Georgia, Tennessee),
        (Idaho, Montana),
        (Idaho, Nevada),
        (Idaho, Oregon),
        (Idaho, Utah),
        (Idaho, Washington),
        (Idaho, Wyoming),
        (Illinois, Indiana),
        (Illinois, Iowa),
        (Illinois, Kentucky),
        (Illinois, Missouri),
        (Illinois, Wisconsin),
        (Indiana, Kentucky),
        (Indiana, Michigan),
        (Indiana, Ohio),
        (Iowa, Minnesota),
        (Iowa, Missouri),
        (Iowa, Nebraska),
        (Iowa, SouthDakota),
        (Iowa, Wisconsin),
        (Kansas, Missouri),
        (Kansas, Nebraska),
        (Kansas, Oklahoma),
        (Kentucky, Missouri),
        (Kentucky, Ohio),
        (Kentucky, Tennessee),
        (Kentucky, Virginia),
        (Kentucky, WestVirginia),
        (Louisiana, Mississippi),
        (Louisiana, Texas),
        (Maine, NewHampshire),
        (Maryland, Pennsylvania),
        (Maryland, Virginia),
        (Maryland, WestVirginia),
        (Massachusetts, NewHampshire),
        (Massachusetts, NewYork),
        (Massachusetts, RhodeIsland),
        (Massachusetts, Vermont),
        (Michigan, Ohio),
        (Michigan, Wisconsin),
        (Minnesota, NorthDakota),
        (Minnesota, SouthDakota),
        (Minnesota, Wisconsin),
        (Mississippi, Tennessee),
        (Missouri, Nebraska),
        (Missouri, Oklahoma),
        (Missouri, Tennessee),
        (Montana, NorthDakota),
        (Montana, SouthDakota),
        (Montana, Wyoming),
        (Nebraska, SouthDakota),
        (Nebraska, Wyoming),
        (Nevada, Oregon),
        (Nevada, Utah),
        (NewHampshire, Vermont),
        (NewJersey, NewYork),
        (NewJersey, Pennsylvania),
        (NewMexico, Oklahoma),
        (NewMexico, Texas),
        (NewYork, Pennsylvania),
        (NewYork, Vermont),
        (NorthCarolina, SouthCarolina),
        (NorthCarolina, Tennessee),
        (NorthCarolina, Virginia),
        (NorthDakota, SouthDakota),
        (Ohio, Pennsylvania),
        (Ohio, WestVirginia),
        (Oklahoma, Texas),
        (Oregon, Washington),
        (Pennsylvania, WestVirginia),
        (SouthDakota, Wyoming),
        (Tennessee, Virginia),
        (Utah, Wyoming),
        (Virginia, WestVirginia),
    ]
};

/// True when two states share a land border (symmetric; a state is not
/// adjacent to itself).
pub fn are_adjacent(a: UsState, b: UsState) -> bool {
    if a == b {
        return false;
    }
    EDGES
        .iter()
        .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
}

/// All land-border neighbors of a state (empty for Alaska, Hawaii,
/// Puerto Rico).
pub fn neighbors(state: UsState) -> Vec<UsState> {
    EDGES
        .iter()
        .filter_map(|&(a, b)| {
            if a == state {
                Some(b)
            } else if b == state {
                Some(a)
            } else {
                None
            }
        })
        .collect()
}

/// Number of border edges in the graph.
pub fn edge_count() -> usize {
    EDGES.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn edges_are_unique_and_canonical() {
        let mut seen = HashSet::new();
        for &(a, b) in EDGES {
            assert!(a < b, "{}-{} not in canonical order", a.abbr(), b.abbr());
            assert!(
                seen.insert((a, b)),
                "duplicate edge {}-{}",
                a.abbr(),
                b.abbr()
            );
        }
    }

    #[test]
    fn symmetry_and_irreflexivity() {
        for &a in UsState::ALL {
            assert!(!are_adjacent(a, a));
            for &b in UsState::ALL {
                assert_eq!(are_adjacent(a, b), are_adjacent(b, a));
            }
        }
    }

    #[test]
    fn known_neighbor_facts() {
        use UsState::*;
        // Missouri and Tennessee tie the record with 8 neighbors each.
        assert_eq!(neighbors(Missouri).len(), 8);
        assert_eq!(neighbors(Tennessee).len(), 8);
        // Maine borders exactly one state.
        assert_eq!(neighbors(Maine), vec![NewHampshire]);
        // Islands and exclaves have none.
        assert!(neighbors(Hawaii).is_empty());
        assert!(neighbors(Alaska).is_empty());
        assert!(neighbors(PuertoRico).is_empty());
        // Kansas' neighbors (paper's Midwestern context).
        let ks: HashSet<_> = neighbors(Kansas).into_iter().collect();
        assert_eq!(
            ks,
            [Colorado, Missouri, Nebraska, Oklahoma]
                .into_iter()
                .collect()
        );
        // Four Corners touches excluded.
        assert!(!are_adjacent(Arizona, Colorado));
        assert!(!are_adjacent(NewMexico, Utah));
        // DC is adjacent to Maryland and Virginia.
        assert!(are_adjacent(DistrictOfColumbia, Maryland));
        assert!(are_adjacent(DistrictOfColumbia, Virginia));
    }

    #[test]
    fn contiguous_states_form_one_component() {
        use std::collections::VecDeque;
        // BFS from Kansas must reach all 49 contiguous units (48 states
        // + DC).
        let mut visited = HashSet::new();
        let mut queue = VecDeque::from([UsState::Kansas]);
        visited.insert(UsState::Kansas);
        while let Some(s) = queue.pop_front() {
            for n in neighbors(s) {
                if visited.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        assert_eq!(visited.len(), 49, "reached {:?}", visited.len());
        assert!(!visited.contains(&UsState::Alaska));
        assert!(!visited.contains(&UsState::Hawaii));
        assert!(!visited.contains(&UsState::PuertoRico));
    }

    #[test]
    fn edge_count_plausible() {
        // The contiguous-US border graph has 109 edges with DC included
        // and Four Corners excluded.
        assert_eq!(edge_count(), EDGES.len());
        assert!((100..=115).contains(&edge_count()), "{}", edge_count());
    }
}
