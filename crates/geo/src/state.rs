//! The 50 US states plus the District of Columbia and Puerto Rico.
//!
//! The paper characterizes "all states and territories of the USA"
//! (Fig. 4); its relative-risk and clustering analyses run at this
//! granularity. Each state carries the metadata the rest of the system
//! needs: postal abbreviation, FIPS code, census region (the paper's
//! Kansas finding is specifically about the *Midwestern* USA), a 2015
//! population estimate (used as a sampling weight by the simulator), a
//! centroid and a bounding box (used for GPS resolution).
//!
//! Centroids and bounding boxes are approximations good to
//! state-membership decisions; they are not survey-grade geometry.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// US census region (plus `Territory` for Puerto Rico).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Census Northeast.
    Northeast,
    /// Census Midwest — the region where the paper singles out Kansas.
    Midwest,
    /// Census South.
    South,
    /// Census West.
    West,
    /// Unincorporated territory (Puerto Rico).
    Territory,
}

/// A geographic bounding box in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Southernmost latitude.
    pub min_lat: f64,
    /// Northernmost latitude.
    pub max_lat: f64,
    /// Westernmost longitude.
    pub min_lon: f64,
    /// Easternmost longitude.
    pub max_lon: f64,
}

impl BoundingBox {
    /// True when the point lies inside (inclusive) the box.
    pub fn contains(&self, lat: f64, lon: f64) -> bool {
        lat >= self.min_lat && lat <= self.max_lat && lon >= self.min_lon && lon <= self.max_lon
    }
}

macro_rules! us_states {
    ($( $variant:ident : $abbr:literal, $name:literal, $fips:literal, $region:ident,
        $pop:literal, ($clat:literal, $clon:literal),
        ($min_lat:literal, $max_lat:literal, $min_lon:literal, $max_lon:literal); )+) => {
        /// A US state, DC, or Puerto Rico.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        #[allow(missing_docs)]
        pub enum UsState {
            $( $variant, )+
        }

        impl UsState {
            /// Every state/territory in canonical (alphabetical-by-variant)
            /// order — the row order of the region matrix `K`.
            pub const ALL: &'static [UsState] = &[ $( UsState::$variant, )+ ];

            /// Two-letter postal abbreviation.
            pub fn abbr(self) -> &'static str {
                match self { $( UsState::$variant => $abbr, )+ }
            }

            /// Full English name.
            pub fn name(self) -> &'static str {
                match self { $( UsState::$variant => $name, )+ }
            }

            /// Two-digit FIPS state code.
            pub fn fips(self) -> u8 {
                match self { $( UsState::$variant => $fips, )+ }
            }

            /// Census region.
            pub fn region(self) -> Region {
                match self { $( UsState::$variant => Region::$region, )+ }
            }

            /// 2015 population estimate (US Census Bureau, rounded).
            pub fn population_2015(self) -> u64 {
                match self { $( UsState::$variant => $pop, )+ }
            }

            /// Approximate geographic centroid `(lat, lon)`.
            pub fn centroid(self) -> (f64, f64) {
                match self { $( UsState::$variant => ($clat, $clon), )+ }
            }

            /// Approximate bounding box.
            pub fn bounding_box(self) -> BoundingBox {
                match self {
                    $( UsState::$variant => BoundingBox {
                        min_lat: $min_lat,
                        max_lat: $max_lat,
                        min_lon: $min_lon,
                        max_lon: $max_lon,
                    }, )+
                }
            }
        }
    };
}

us_states! {
    Alabama:       "AL", "Alabama",              1, South,     4_859_000, (32.8, -86.8),  (30.2, 35.0, -88.5, -84.9);
    Alaska:        "AK", "Alaska",               2, West,        738_000, (64.0, -152.0), (51.2, 71.4, -179.1, -129.9);
    Arizona:       "AZ", "Arizona",              4, West,      6_828_000, (34.3, -111.7), (31.3, 37.0, -114.8, -109.0);
    Arkansas:      "AR", "Arkansas",             5, South,     2_978_000, (34.9, -92.4),  (33.0, 36.5, -94.6, -89.6);
    California:    "CA", "California",           6, West,     39_145_000, (37.2, -119.5), (32.5, 42.0, -124.4, -114.1);
    Colorado:      "CO", "Colorado",             8, West,      5_456_000, (39.0, -105.5), (37.0, 41.0, -109.1, -102.0);
    Connecticut:   "CT", "Connecticut",          9, Northeast, 3_591_000, (41.6, -72.7),  (40.9, 42.1, -73.8, -71.8);
    Delaware:      "DE", "Delaware",            10, South,       946_000, (39.0, -75.5),  (38.4, 39.9, -75.8, -74.9);
    DistrictOfColumbia: "DC", "District of Columbia", 11, South, 672_000, (38.9, -77.0),  (38.79, 39.0, -77.13, -76.90);
    Florida:       "FL", "Florida",             12, South,    20_271_000, (28.6, -82.4),  (24.5, 31.0, -87.7, -79.9);
    Georgia:       "GA", "Georgia",             13, South,    10_215_000, (32.6, -83.4),  (30.3, 35.0, -85.7, -80.7);
    Hawaii:        "HI", "Hawaii",              15, West,      1_431_000, (20.3, -156.4), (18.9, 22.3, -160.3, -154.7);
    Idaho:         "ID", "Idaho",               16, West,      1_655_000, (44.4, -114.6), (42.0, 49.0, -117.3, -111.0);
    Illinois:      "IL", "Illinois",            17, Midwest,  12_860_000, (40.0, -89.2),  (36.9, 42.6, -91.6, -87.4);
    Indiana:       "IN", "Indiana",             18, Midwest,   6_620_000, (39.9, -86.3),  (37.7, 41.8, -88.2, -84.7);
    Iowa:          "IA", "Iowa",                19, Midwest,   3_124_000, (42.0, -93.5),  (40.3, 43.6, -96.7, -90.0);
    Kansas:        "KS", "Kansas",              20, Midwest,   2_911_000, (38.5, -98.4),  (36.9, 40.1, -102.2, -94.5);
    Kentucky:      "KY", "Kentucky",            21, South,     4_425_000, (37.5, -85.3),  (36.4, 39.2, -89.7, -81.8);
    Louisiana:     "LA", "Louisiana",           22, South,     4_671_000, (31.0, -92.0),  (28.8, 33.1, -94.1, -88.7);
    Maine:         "ME", "Maine",               23, Northeast, 1_329_000, (45.4, -69.2),  (43.0, 47.6, -71.2, -66.8);
    Maryland:      "MD", "Maryland",            24, South,     6_006_000, (39.0, -76.8),  (37.8, 39.8, -79.6, -74.9);
    Massachusetts: "MA", "Massachusetts",       25, Northeast, 6_794_000, (42.3, -71.8),  (41.1, 43.0, -73.6, -69.8);
    Michigan:      "MI", "Michigan",            26, Midwest,   9_923_000, (44.3, -85.4),  (41.6, 48.4, -90.5, -82.3);
    Minnesota:     "MN", "Minnesota",           27, Midwest,   5_489_000, (46.3, -94.3),  (43.4, 49.5, -97.3, -89.4);
    Mississippi:   "MS", "Mississippi",         28, South,     2_992_000, (32.7, -89.7),  (30.1, 35.1, -91.8, -88.0);
    Missouri:      "MO", "Missouri",            29, Midwest,   6_084_000, (38.4, -92.5),  (35.9, 40.7, -95.9, -89.0);
    Montana:       "MT", "Montana",             30, West,      1_033_000, (47.0, -109.6), (44.3, 49.1, -116.2, -103.9);
    Nebraska:      "NE", "Nebraska",            31, Midwest,   1_896_000, (41.5, -99.8),  (39.9, 43.1, -104.2, -95.2);
    Nevada:        "NV", "Nevada",              32, West,      2_891_000, (39.3, -116.6), (34.9, 42.1, -120.1, -113.9);
    NewHampshire:  "NH", "New Hampshire",       33, Northeast, 1_330_000, (43.7, -71.6),  (42.6, 45.4, -72.7, -70.5);
    NewJersey:     "NJ", "New Jersey",          34, Northeast, 8_958_000, (40.1, -74.7),  (38.8, 41.5, -75.7, -73.8);
    NewMexico:     "NM", "New Mexico",          35, West,      2_085_000, (34.4, -106.1), (31.2, 37.1, -109.2, -102.9);
    NewYork:       "NY", "New York",            36, Northeast, 19_795_000, (42.9, -75.6), (40.4, 45.1, -79.9, -71.8);
    NorthCarolina: "NC", "North Carolina",      37, South,    10_042_000, (35.5, -79.4),  (33.7, 36.7, -84.4, -75.4);
    NorthDakota:   "ND", "North Dakota",        38, Midwest,     757_000, (47.4, -100.5), (45.8, 49.1, -104.2, -96.5);
    Ohio:          "OH", "Ohio",                39, Midwest,  11_613_000, (40.3, -82.8),  (38.3, 42.1, -84.9, -80.4);
    Oklahoma:      "OK", "Oklahoma",            40, South,     3_911_000, (35.6, -97.5),  (33.5, 37.1, -103.1, -94.3);
    Oregon:        "OR", "Oregon",              41, West,      4_029_000, (43.9, -120.6), (41.9, 46.4, -124.7, -116.4);
    Pennsylvania:  "PA", "Pennsylvania",        42, Northeast, 12_803_000, (40.9, -77.8), (39.6, 42.4, -80.6, -74.6);
    RhodeIsland:   "RI", "Rhode Island",        44, Northeast, 1_056_000, (41.7, -71.5),  (41.0, 42.1, -72.0, -71.0);
    SouthCarolina: "SC", "South Carolina",      45, South,     4_896_000, (33.9, -80.9),  (31.9, 35.3, -83.5, -78.4);
    SouthDakota:   "SD", "South Dakota",        46, Midwest,     858_000, (44.4, -100.2), (42.4, 46.0, -104.2, -96.3);
    Tennessee:     "TN", "Tennessee",           47, South,     6_600_000, (35.9, -86.4),  (34.9, 36.8, -90.4, -81.5);
    Texas:         "TX", "Texas",               48, South,    27_469_000, (31.5, -99.3),  (25.7, 36.6, -106.7, -93.4);
    Utah:          "UT", "Utah",                49, West,      2_996_000, (39.3, -111.7), (36.9, 42.1, -114.2, -108.9);
    Vermont:       "VT", "Vermont",             50, Northeast,   626_000, (44.1, -72.7),  (42.6, 45.1, -73.5, -71.4);
    Virginia:      "VA", "Virginia",            51, South,     8_383_000, (37.5, -78.9),  (36.4, 39.6, -83.8, -75.1);
    Washington:    "WA", "Washington",          53, West,      7_170_000, (47.4, -120.5), (45.4, 49.1, -124.9, -116.8);
    WestVirginia:  "WV", "West Virginia",       54, South,     1_844_000, (38.6, -80.6),  (37.1, 40.7, -82.7, -77.6);
    Wisconsin:     "WI", "Wisconsin",           55, Midwest,   5_771_000, (44.6, -89.7),  (42.4, 47.2, -93.0, -86.1);
    Wyoming:       "WY", "Wyoming",             56, West,        586_000, (43.0, -107.6), (40.9, 45.1, -111.2, -104.0);
    PuertoRico:    "PR", "Puerto Rico",         72, Territory, 3_474_000, (18.2, -66.4),  (17.8, 18.6, -67.4, -65.1);
}

impl UsState {
    /// Number of states/territories modeled (the `r` of the paper's
    /// `r × n` region matrix).
    pub const COUNT: usize = 52;

    /// Canonical row index of this state.
    pub fn index(self) -> usize {
        UsState::ALL
            .iter()
            .position(|&s| s == self)
            .expect("state present in ALL")
    }

    /// State with canonical index `i`.
    pub fn from_index(i: usize) -> Option<UsState> {
        UsState::ALL.get(i).copied()
    }

    /// Looks a state up by its two-letter postal abbreviation
    /// (case-insensitive).
    pub fn from_abbr(abbr: &str) -> Option<UsState> {
        if abbr.len() != 2 {
            return None;
        }
        let upper = abbr.to_ascii_uppercase();
        UsState::ALL.iter().copied().find(|s| s.abbr() == upper)
    }

    /// Looks a state up by full name (case-insensitive, exact).
    pub fn from_name(name: &str) -> Option<UsState> {
        let lower = name.to_lowercase();
        UsState::ALL
            .iter()
            .copied()
            .find(|s| s.name().to_lowercase() == lower)
    }
}

impl fmt::Display for UsState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for UsState {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        UsState::from_abbr(s)
            .or_else(|| UsState::from_name(s))
            .ok_or_else(|| format!("unknown state: {s}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn count_and_index_round_trip() {
        assert_eq!(UsState::ALL.len(), UsState::COUNT);
        for (i, &s) in UsState::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(UsState::from_index(i), Some(s));
        }
        assert_eq!(UsState::from_index(UsState::COUNT), None);
    }

    #[test]
    fn abbrs_unique_and_uppercase() {
        let mut seen = HashSet::new();
        for &s in UsState::ALL {
            assert_eq!(s.abbr().len(), 2);
            assert_eq!(s.abbr(), s.abbr().to_ascii_uppercase());
            assert!(seen.insert(s.abbr()), "duplicate abbr {}", s.abbr());
        }
    }

    #[test]
    fn fips_unique() {
        let mut seen = HashSet::new();
        for &s in UsState::ALL {
            assert!(seen.insert(s.fips()), "duplicate FIPS {}", s.fips());
        }
    }

    #[test]
    fn from_abbr_lookup() {
        assert_eq!(UsState::from_abbr("KS"), Some(UsState::Kansas));
        assert_eq!(UsState::from_abbr("ks"), Some(UsState::Kansas));
        assert_eq!(UsState::from_abbr("XX"), None);
        assert_eq!(UsState::from_abbr("KAN"), None);
    }

    #[test]
    fn from_name_lookup() {
        assert_eq!(UsState::from_name("kansas"), Some(UsState::Kansas));
        assert_eq!(
            UsState::from_name("District of Columbia"),
            Some(UsState::DistrictOfColumbia)
        );
        assert_eq!(UsState::from_name("Narnia"), None);
    }

    #[test]
    fn from_str_accepts_both() {
        assert_eq!("MA".parse::<UsState>().unwrap(), UsState::Massachusetts);
        assert_eq!(
            "massachusetts".parse::<UsState>().unwrap(),
            UsState::Massachusetts
        );
        assert!("atlantis".parse::<UsState>().is_err());
    }

    #[test]
    fn kansas_is_midwest() {
        // Load-bearing for the paper's Fig. 5 discussion: Kansas is "the
        // only state in the Midwestern USA" with excess kidney talk.
        assert_eq!(UsState::Kansas.region(), Region::Midwest);
        assert_eq!(UsState::Louisiana.region(), Region::South);
        assert_eq!(UsState::Massachusetts.region(), Region::Northeast);
        assert_eq!(UsState::PuertoRico.region(), Region::Territory);
    }

    #[test]
    fn region_partition_sizes() {
        let count = |r: Region| UsState::ALL.iter().filter(|s| s.region() == r).count();
        assert_eq!(count(Region::Northeast), 9);
        assert_eq!(count(Region::Midwest), 12);
        assert_eq!(count(Region::South), 17); // 16 states + DC
        assert_eq!(count(Region::West), 13);
        assert_eq!(count(Region::Territory), 1);
    }

    #[test]
    fn centroid_inside_own_bounding_box() {
        for &s in UsState::ALL {
            let (lat, lon) = s.centroid();
            assert!(
                s.bounding_box().contains(lat, lon),
                "{} centroid outside bbox",
                s.name()
            );
        }
    }

    #[test]
    fn populations_plausible() {
        let total: u64 = UsState::ALL.iter().map(|s| s.population_2015()).sum();
        // USA 2015 ≈ 321M + PR 3.5M.
        assert!(total > 300_000_000 && total < 340_000_000, "total {total}");
        assert!(UsState::California.population_2015() > UsState::Wyoming.population_2015());
    }

    #[test]
    fn bounding_boxes_well_formed() {
        for &s in UsState::ALL {
            let b = s.bounding_box();
            assert!(b.min_lat < b.max_lat, "{}", s.name());
            assert!(b.min_lon < b.max_lon, "{}", s.name());
        }
    }

    #[test]
    fn display_is_full_name() {
        assert_eq!(UsState::NewYork.to_string(), "New York");
    }
}
