//! Offline US geocoding substrate for `donorpulse`.
//!
//! The paper locates Twitter users by augmenting the free-text
//! self-reported `location` field of the user profile with OpenStreetMap,
//! falling back on GPS coordinates when a tweet is geo-tagged (~1.4% of
//! tweets). No network service is available here, so this crate is an
//! embedded equivalent:
//!
//! * [`state`] — the 50 states plus DC and Puerto Rico, with
//!   abbreviations, FIPS codes, census regions, 2015 population
//!   estimates, centroids and bounding boxes;
//! * [`gazetteer`] — ~340 major US cities and common place nicknames
//!   ("nyc", "nola", "the windy city") mapped to their states, plus
//!   non-US markers used to discard foreign users (the paper keeps only
//!   USA users: 134,986 of 975,021 collected tweets);
//! * [`parse`] — a robust parser for noisy profile strings ("Wichita,
//!   KS", "NYC ✈ LA", "somewhere on earth");
//! * [`point`] — GPS `(lat, lon)` → state resolution via bounding boxes
//!   with nearest-centroid disambiguation;
//! * [`geocode`] — the [`geocode::Geocoder`] facade combining
//!   all of the above with the same precedence the paper uses
//!   (GPS > profile);
//! * [`service`] — geocoding as a fallible, latency-carrying *service*
//!   call ([`service::LocationService`]), with a seeded flaky wrapper
//!   for exercising retry/backoff/park machinery deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod gazetteer;
pub mod geocode;
pub mod parse;
pub mod point;
pub mod service;
pub mod state;

pub mod data;

pub use data::{City, CITIES};
pub use geocode::{Geocoder, Located, LocationSource};
pub use parse::{parse_location, ParseOutcome};
pub use service::{FlakyConfig, FlakyGeocoder, GeoServiceError, LocationService, ServiceResponse};
pub use state::{Region, UsState};
