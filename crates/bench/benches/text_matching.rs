//! Throughput of the collection-side text machinery: tokenizer,
//! Aho–Corasick scan, the `Q` filter (both implementations), and organ
//! extraction. These bound the paper's 385-day live-collection loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use donorpulse_text::extract::OrganExtractor;
use donorpulse_text::{tokenize, KeywordQuery, TrackFilter};
use donorpulse_twitter::{GeneratorConfig, TwitterSimulation};

fn sample_tweets(n: usize) -> Vec<String> {
    let mut cfg = GeneratorConfig::paper_scaled(0.01);
    cfg.seed = 7;
    let sim = TwitterSimulation::generate(cfg).expect("sim");
    (0..n.min(sim.firehose_len()))
        .map(|i| sim.realize(i).text)
        .collect()
}

fn bench_text(c: &mut Criterion) {
    let tweets = sample_tweets(2_000);
    let total_bytes: usize = tweets.iter().map(String::len).sum();

    let mut group = c.benchmark_group("text");
    group.throughput(Throughput::Bytes(total_bytes as u64));

    group.bench_function("tokenize", |b| {
        b.iter(|| {
            let mut tokens = 0usize;
            for t in &tweets {
                tokens += tokenize(black_box(t)).len();
            }
            tokens
        })
    });

    let query = KeywordQuery::paper();
    group.bench_function("keyword_query_filter", |b| {
        b.iter(|| {
            tweets
                .iter()
                .filter(|t| query.matches(black_box(t)))
                .count()
        })
    });

    let track = TrackFilter::paper_cartesian();
    group.bench_function("track_filter_cartesian", |b| {
        b.iter(|| {
            tweets
                .iter()
                .filter(|t| track.matches(black_box(t)))
                .count()
        })
    });

    let extractor = OrganExtractor::new();
    group.bench_function("organ_extraction", |b| {
        b.iter(|| {
            let mut mentions = 0u32;
            for t in &tweets {
                mentions += extractor.extract(black_box(t)).total();
            }
            mentions
        })
    });

    group.finish();
}

criterion_group!(benches, bench_text);
criterion_main!(benches);
