//! Throughput of the location-augmentation stage: profile parsing and
//! GPS point-in-state resolution (Sec. III-A's OpenStreetMap step).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use donorpulse_geo::Geocoder;
use donorpulse_twitter::{GeneratorConfig, TwitterSimulation};

fn bench_geocoding(c: &mut Criterion) {
    let mut cfg = GeneratorConfig::paper_scaled(0.01);
    cfg.seed = 11;
    let sim = TwitterSimulation::generate(cfg).expect("sim");
    let profiles: Vec<&str> = sim
        .users()
        .iter()
        .take(3_000)
        .map(|u| u.profile_location.as_str())
        .collect();
    let geocoder = Geocoder::new();

    let mut group = c.benchmark_group("geocoding");
    group.throughput(Throughput::Elements(profiles.len() as u64));

    group.bench_function("geocoder_build", |b| b.iter(Geocoder::new));

    group.bench_function("profile_parse", |b| {
        b.iter(|| {
            profiles
                .iter()
                .filter(|p| geocoder.resolve_profile(black_box(p)).state().is_some())
                .count()
        })
    });

    let points: Vec<(f64, f64)> = donorpulse_geo::CITIES
        .iter()
        .map(|c| (c.lat, c.lon))
        .collect();
    group.bench_function("point_in_state", |b| {
        b.iter(|| {
            points
                .iter()
                .filter(|&&(lat, lon)| geocoder.resolve_point(lat, lon).is_some())
                .count()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_geocoding);
criterion_main!(benches);
