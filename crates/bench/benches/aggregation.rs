//! Cost of the paper's core algebra (Eq. 3): building Û, the membership
//! matrices, and `K = (LᵀL)⁻¹LᵀÛ` as the user count grows.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use donorpulse_core::aggregate::Aggregation;
use donorpulse_core::membership::{by_dominant_organ, by_region};
use donorpulse_core::AttentionMatrix;
use donorpulse_geo::UsState;
use donorpulse_text::extract::MentionCounts;
use donorpulse_text::Organ;
use donorpulse_twitter::UserId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

fn synthetic_population(
    n: usize,
    seed: u64,
) -> (HashMap<UserId, MentionCounts>, HashMap<UserId, UsState>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mentions = HashMap::with_capacity(n);
    let mut states = HashMap::with_capacity(n);
    for i in 0..n {
        let mut mc = MentionCounts::new();
        mc.add(Organ::ALL[rng.gen_range(0..6)], rng.gen_range(1..6));
        if rng.gen_bool(0.2) {
            mc.add(Organ::ALL[rng.gen_range(0..6)], 1);
        }
        mentions.insert(UserId(i as u64), mc);
        states.insert(
            UserId(i as u64),
            UsState::from_index(rng.gen_range(0..UsState::COUNT)).unwrap(),
        );
    }
    (mentions, states)
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation");
    for &n in &[1_000usize, 10_000, 72_000] {
        let (mentions, states) = synthetic_population(n, 42);
        group.bench_with_input(BenchmarkId::new("build_u_hat", n), &mentions, |b, m| {
            b.iter(|| AttentionMatrix::from_mentions(black_box(m)).unwrap())
        });

        let attention = AttentionMatrix::from_mentions(&mentions).unwrap();
        group.bench_with_input(
            BenchmarkId::new("organ_k_eq1_eq3", n),
            &attention,
            |b, att| {
                b.iter(|| {
                    let membership = by_dominant_organ(black_box(att)).unwrap();
                    Aggregation::compute(&membership, att.matrix()).unwrap()
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("region_membership_eq2", n),
            &attention,
            |b, att| b.iter(|| by_region(black_box(att), &states).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
