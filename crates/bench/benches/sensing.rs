//! Benchmarks for the real-time-sensing extensions: daily-series
//! construction, burst detection, incremental ingestion, and JSONL
//! corpus archiving.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use donorpulse_core::incremental::IncrementalSensor;
use donorpulse_core::temporal::{detect_bursts, BurstConfig, DailySeries};
use donorpulse_geo::Geocoder;
use donorpulse_text::KeywordQuery;
use donorpulse_twitter::io::{read_corpus, write_corpus};
use donorpulse_twitter::{Corpus, GeneratorConfig, TwitterSimulation};

fn setup() -> (TwitterSimulation, Corpus) {
    let mut cfg = GeneratorConfig::paper_scaled(0.02);
    cfg.seed = 21;
    let sim = TwitterSimulation::generate(cfg).expect("sim");
    let corpus: Corpus = sim
        .stream()
        .with_filter(Box::new(KeywordQuery::paper()))
        .collect();
    (sim, corpus)
}

fn bench_sensing(c: &mut Criterion) {
    let (sim, corpus) = setup();
    let mut group = c.benchmark_group("sensing");
    group.throughput(Throughput::Elements(corpus.len() as u64));

    group.bench_function("daily_series_build", |b| {
        b.iter(|| DailySeries::from_corpus(black_box(&corpus)))
    });

    let series = DailySeries::from_corpus(&corpus);
    group.bench_function("burst_detection", |b| {
        b.iter(|| detect_bursts(black_box(&series), BurstConfig::default()).unwrap())
    });

    let geocoder = Geocoder::new();
    group.bench_function("incremental_ingest", |b| {
        b.iter(|| {
            let mut sensor = IncrementalSensor::new(&geocoder, |id| {
                sim.users()
                    .get(id.0 as usize)
                    .map(|u| u.profile_location.clone())
            });
            for t in corpus.tweets() {
                sensor.ingest(t);
            }
            sensor.located_users()
        })
    });

    let mut archive = Vec::new();
    write_corpus(&corpus, &mut archive).expect("archive");
    group.throughput(Throughput::Bytes(archive.len() as u64));
    group.bench_function("jsonl_write", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(archive.len());
            write_corpus(black_box(&corpus), &mut buf).unwrap();
            buf.len()
        })
    });
    group.bench_function("jsonl_read", |b| {
        b.iter(|| read_corpus(black_box(archive.as_slice())).unwrap().len())
    });

    group.finish();
}

criterion_group!(benches, bench_sensing);
criterion_main!(benches);
