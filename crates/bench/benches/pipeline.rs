//! Macro benchmarks: the full collection + characterization pipeline at
//! increasing corpus scales, and its two dominant stages in isolation
//! (stream filtering, location augmentation).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use donorpulse_core::pipeline::Pipeline;
use donorpulse_geo::Geocoder;
use donorpulse_text::KeywordQuery;
use donorpulse_twitter::{Corpus, GeneratorConfig, TwitterSimulation};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    for &scale in &[0.005f64, 0.02] {
        group.bench_with_input(
            BenchmarkId::new("end_to_end", format!("{scale}")),
            &scale,
            |b, &s| {
                b.iter(|| {
                    let mut config = donorpulse_bench::config_at_scale(s, 1);
                    config.run_user_clustering = false;
                    Pipeline::new().run(black_box(config)).unwrap()
                })
            },
        );
    }

    // Stage isolation at a fixed scale.
    let mut cfg = GeneratorConfig::paper_scaled(0.02);
    cfg.seed = 1;
    let sim = TwitterSimulation::generate(cfg).expect("sim");

    group.bench_function("stage_collect_stream", |b| {
        b.iter(|| {
            let corpus: Corpus = sim
                .stream()
                .with_filter(Box::new(KeywordQuery::paper()))
                .collect();
            corpus.len()
        })
    });

    let collected: Corpus = sim
        .stream()
        .with_filter(Box::new(KeywordQuery::paper()))
        .collect();
    let geocoder = Geocoder::new();
    group.bench_function("stage_locate_users", |b| {
        b.iter(|| {
            let mut located = 0usize;
            let mut seen = std::collections::HashSet::new();
            for t in collected.tweets() {
                if seen.insert(t.user) {
                    let profile = &sim.users()[t.user.0 as usize].profile_location;
                    if geocoder.locate(Some(profile), t.geo).state.is_some() {
                        located += 1;
                    }
                }
            }
            located
        })
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
