//! Clustering costs: the Fig. 6 agglomerative run over 52 states, the
//! Fig. 7 K-Means sweep, and the silhouette scorer, plus the metric
//! ablation (Bhattacharyya vs Euclidean affinity).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use donorpulse_cluster::silhouette::sampled_silhouette_score;
use donorpulse_cluster::{agglomerative, KMeans, KMeansConfig, Linkage, Metric};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthetic attention-like rows: near-one-hot distributions over 6 organs.
fn attention_rows(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let dominant = rng.gen_range(0..6);
            let mut row = vec![0.0; 6];
            let main: f64 = rng.gen_range(0.7..0.95);
            row[dominant] = main;
            let mut rest: f64 = 1.0 - main;
            for (j, slot) in row.iter_mut().enumerate() {
                if j != dominant {
                    let share = if j == 5 {
                        rest
                    } else {
                        rng.gen_range(0.0..rest)
                    };
                    *slot += share;
                    rest -= share;
                }
            }
            row
        })
        .collect()
}

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");

    // Fig. 6 core: 52 state rows.
    let states = attention_rows(52, 1);
    for metric in [Metric::Bhattacharyya, Metric::Euclidean] {
        group.bench_with_input(
            BenchmarkId::new("agglomerative_52_states", metric.name()),
            &metric,
            |b, &m| b.iter(|| agglomerative(black_box(&states), m, Linkage::Average).unwrap()),
        );
    }

    // Fig. 7 core: K-Means over user attention vectors at several sizes.
    for &n in &[1_000usize, 5_000, 20_000] {
        let rows = attention_rows(n, 2);
        group.bench_with_input(BenchmarkId::new("kmeans_k12", n), &rows, |b, rows| {
            b.iter(|| KMeans::fit(black_box(rows), KMeansConfig::new(12).with_seed(3)).unwrap())
        });
    }

    // Model selection: silhouette on a 2k subsample.
    let rows = attention_rows(5_000, 4);
    let model = KMeans::fit(&rows, KMeansConfig::new(12).with_seed(5)).unwrap();
    group.bench_function("silhouette_sampled_2000", |b| {
        b.iter(|| {
            sampled_silhouette_score(
                black_box(&rows),
                black_box(&model.labels),
                Metric::Euclidean,
                2_000,
            )
            .unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
