//! End-to-end CLI tests for the cross-process consumer group: drive
//! the real `repro` binary (router + spawned `shard-worker` children)
//! and hold it to the same artifact-identity bar as the in-process
//! group.
//!
//! 1. **Process identity** — `stream --procs 2` prints a stdout block
//!    byte-identical to `stream --shards 2` under clean and
//!    recoverable faults (and to the unsharded run, transitively —
//!    `tests/sharding.rs` pins that edge).
//! 2. **Crash-mid-epoch supervision** — kill one worker mid-stream
//!    with `--kill-worker`; the supervisor respawns it from its last
//!    complete checkpoint epoch and the finished run is byte-identical
//!    to the uninterrupted one.
//! 3. **Honest failure** — a worker death without durable checkpoints
//!    is a clean, actionable error, not a hang or a wrong answer.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// Scratch directory unique to this test process.
fn scratch(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dp-procgroup-test-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn run(args: &[&str]) -> Output {
    repro()
        .args(["--scale", "0.02", "--seed", "7"])
        .args(args)
        .output()
        .expect("repro runs")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "repro failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("utf8 stdout")
}

#[test]
fn two_processes_match_two_threads_byte_for_byte() {
    for faults in ["off", "recoverable"] {
        let threads = stdout_of(&run(&["--faults", faults, "stream", "--shards", "2"]));
        let procs = stdout_of(&run(&["--faults", faults, "stream", "--procs", "2"]));
        assert_eq!(
            procs, threads,
            "faults={faults}: process group diverged from the in-process group"
        );
        assert!(procs.contains("STREAM SENSOR SNAPSHOT"));
        assert!(procs.contains("batch equivalence       corpus=yes"));
    }
}

#[test]
fn killed_worker_respawns_and_reproduces_the_uninterrupted_run() {
    let ref_dir = scratch("ref");
    let kill_dir = scratch("kill");
    let log_dir = scratch("logs");

    let reference = stdout_of(&run(&[
        "--faults",
        "recoverable",
        "stream",
        "--procs",
        "2",
        "--checkpoint-dir",
        ref_dir.to_str().unwrap(),
        "--checkpoint-every",
        "512",
    ]));

    // Worker 1 exits hard mid-epoch after 500 admitted tweets; the
    // supervisor must respawn it from its last complete cut and the
    // final artifacts must not move.
    let out = run(&[
        "--faults",
        "recoverable",
        "stream",
        "--procs",
        "2",
        "--checkpoint-dir",
        kill_dir.to_str().unwrap(),
        "--checkpoint-every",
        "512",
        "--kill-worker",
        "1:500",
        "--worker-log-dir",
        log_dir.to_str().unwrap(),
    ]);
    let healed = stdout_of(&out);
    assert_eq!(healed, reference, "respawned run diverged");

    // The supervisor log records the death and the resume.
    let sup = std::fs::read_to_string(log_dir.join("supervisor.log")).expect("supervisor log");
    assert!(sup.contains("DIED"), "no death recorded:\n{sup}");
    assert!(sup.contains("resuming from epoch"), "no resume:\n{sup}");
    // Both incarnations of worker 1 left stderr logs behind.
    assert!(log_dir.join("worker-1-gen1.log").exists());
    assert!(log_dir.join("worker-1-gen2.log").exists());

    for dir in [ref_dir, kill_dir, log_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn worker_death_without_checkpoints_is_a_clean_error() {
    let out = run(&[
        "--faults",
        "off",
        "stream",
        "--procs",
        "2",
        "--kill-worker",
        "1:200",
    ]);
    assert!(
        !out.status.success(),
        "an unhealable worker death must fail the run"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--checkpoint-dir"),
        "the error must say how to make death survivable:\n{stderr}"
    );
}
