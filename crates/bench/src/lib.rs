//! Shared helpers for the benchmark harness and the `repro` binary.

#![forbid(unsafe_code)]

use donorpulse_core::pipeline::{Pipeline, PipelineConfig, PipelineRun};

/// Builds the paper-calibrated pipeline configuration at `scale`.
pub fn config_at_scale(scale: f64, seed: u64) -> PipelineConfig {
    let mut config = PipelineConfig::paper_scaled(scale);
    config.generator.seed = seed;
    config
}

/// Runs the full pipeline at `scale` with a fixed seed.
pub fn run_at_scale(scale: f64, seed: u64) -> PipelineRun {
    Pipeline::new()
        .run(config_at_scale(scale, seed))
        .expect("pipeline run")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_runs() {
        let mut c = config_at_scale(0.003, 1);
        c.run_user_clustering = false;
        let run = Pipeline::new().run(c).unwrap();
        assert!(run.collected_tweets > 0);
    }
}
