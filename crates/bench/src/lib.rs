//! Shared helpers for the benchmark harness and the `repro` binary.

#![forbid(unsafe_code)]

use donorpulse_core::pipeline::{Pipeline, PipelineConfig, PipelineRun};

/// Builds the paper-calibrated pipeline configuration at `scale`.
pub fn config_at_scale(scale: f64, seed: u64) -> PipelineConfig {
    let mut config = PipelineConfig::paper_scaled(scale);
    config.generator.seed = seed;
    config
}

/// Runs the full pipeline at `scale` with a fixed seed.
pub fn run_at_scale(scale: f64, seed: u64) -> PipelineRun {
    Pipeline::new()
        .run(config_at_scale(scale, seed))
        .expect("pipeline run")
}

/// [`run_at_scale`] with an enabled metrics registry, so the returned
/// run carries a populated [`PipelineRun::metrics`] snapshot — what the
/// `repro metrics` command and the BENCH trajectories are built on.
pub fn instrumented_run_at_scale(scale: f64, seed: u64) -> PipelineRun {
    let mut config = config_at_scale(scale, seed);
    config.metrics = donorpulse_obs::MetricsRegistry::enabled();
    Pipeline::new().run(config).expect("pipeline run")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_runs() {
        let mut c = config_at_scale(0.003, 1);
        c.run_user_clustering = false;
        let run = Pipeline::new().run(c).unwrap();
        assert!(run.collected_tweets > 0);
    }

    #[test]
    fn snapshot_json_is_valid_and_faithful() {
        // The obs crate is dependency-free, so its JSON writer is
        // hand-rolled; validate it against a real parser here.
        let mut c = config_at_scale(0.003, 1);
        c.run_user_clustering = false;
        c.metrics = donorpulse_obs::MetricsRegistry::enabled();
        let run = Pipeline::new().run(c).unwrap();
        let parsed: serde_json::Value =
            serde_json::from_str(&run.metrics.to_json()).expect("well-formed snapshot JSON");
        assert_eq!(
            parsed["counters"]["collected_tweets_total"].as_u64(),
            Some(run.collected_tweets)
        );
        assert_eq!(
            parsed["stages"][0]["name"].as_str(),
            Some(run.metrics.stages[0].name.as_str())
        );
        let n_stages = parsed["stages"].as_array().map(Vec::len);
        assert_eq!(n_stages, Some(run.metrics.stages.len()));
    }
}
