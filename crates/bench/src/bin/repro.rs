//! `repro` — regenerates every table and figure of the paper, plus the
//! ablation experiments called out in DESIGN.md.
//!
//! ```text
//! repro [--scale S] [--seed N] [--threads T] [--json PATH] [--metrics] <command>
//!
//! commands:
//!   all        every table and figure, in paper order
//!   metrics    per-stage wall times, throughput, and domain counters
//!   bench      criterion-free smoke benchmark -> BENCH_<n>.json
//!   stream     fault-tolerant streaming front-half (--faults off|recoverable|lossy|
//!              outage|geo-outage); --wire v1|v2|v2-borrowed selects the frame
//!              layout the source requests (v2 batched frames are the default;
//!              byte-identical artifacts for every mode); --campaigns FILE
//!              senses every campaign in the manifest over one firehose pass
//!              (docs/CAMPAIGNS.md); --shards N runs the sharded consumer group
//!              (byte-identical artifacts for every N), with --checkpoint-dir/
//!              --checkpoint-every/--kill-after/--resume for per-shard
//!              checkpoint/restore, --checkpoint-retain K to keep only the newest
//!              K complete epochs, and --dead-letter-dir for the replayable
//!              abandonment log
//!   replay-dead-letters  re-run a degraded stream, then feed its dead-letter
//!              log (--dead-letter-dir, written by a prior `stream` run) back
//!              through the sensor and verify coverage is restored
//!   bench-shards  shard-scaling smoke bench (N = 1, 2, 4)
//!   bench-stream  stream-path decode+admission throughput for the three wire
//!              paths (v1, v2, v2-borrowed) over identical pre-encoded
//!              deliveries -> BENCH_STREAM.json (or --json PATH)
//!   serve      always-on sensor daemon: sharded checkpointed ingest plus an
//!              ETag-cached HTTP front-end (--port/--workers; endpoints and
//!              semantics in docs/SERVING.md); runs until POST /shutdown
//!   loadgen    seeded closed-loop load generator against a running daemon
//!              (--addr HOST:PORT --clients N --requests M) -> BENCH_SERVE.json
//!   http-get   one HTTP exchange against a running daemon (--addr, --path,
//!              --if-none-match ETAG, --post); body to stdout, status/ETag
//!              to stderr — the CI smoke gate's curl substitute
//!   table1     Table I  — dataset statistics
//!   fig2a      Fig 2(a) — users per organ + Spearman vs transplants
//!   fig2b      Fig 2(b) — multi-organ mentions, users vs tweets
//!   fig3       Fig 3    — organ characterization
//!   fig4       Fig 4    — state characterization
//!   fig5       Fig 5    — relative-risk highlighted organs
//!   fig6       Fig 6    — hierarchical clustering of states
//!   fig7       Fig 7    — K-Means user clusters
//!   ablation-unit       user-level vs tweet-level characterization
//!   ablation-metric     Bhattacharyya vs Euclidean/Cosine state clustering
//!   ablation-highlight  winner-takes-all vs relative-risk highlighting
//!   ablation-geo        GPS-only vs profile-augmented geolocation
//!   extension-burst     plant an awareness event; recover it in real time
//!   extension-roles     behavioural user-role breakdown (paper's conclusion)
//!   extension-pairs     within-tweet organ co-occurrence (Sec. IV-A)
//!   extension-fwer      permutation family-wise correction of Fig 5
//!   extension-moran     Moran's I spatial autocorrelation per organ
//!   control-null        falsification: remove the planted anomalies
//! ```
//!
//! `--scale 1.0` reproduces the paper's full corpus size (~975k collected
//! tweets); the default `0.25` keeps every statistical shape while
//! finishing in seconds.
//!
//! `--metrics` attaches an enabled `MetricsRegistry` to any
//! pipeline-backed command and appends the per-stage metrics table to
//! the output; the `metrics` command prints only that table, and with
//! `--json PATH` dumps the same snapshot as JSON (the schema is
//! documented in docs/OBSERVABILITY.md). Counter and item values are
//! deterministic in `--seed`; only wall times vary between repeats.
//!
//! `--threads T` sets `compute_threads` for the analytics back-half
//! (K-Means sweep, silhouette, state distance matrix); `0` uses every
//! core. Artifacts are bit-identical for any `T` — see
//! docs/PERFORMANCE.md. `bench` runs one instrumented pipeline at the
//! current scale/seed/threads and writes the per-stage wall times (the
//! obs snapshot plus a knob header) to the first unused `BENCH_<n>.json`
//! (or to `--json PATH` when given).

use donorpulse_cluster::validation::adjusted_rand_index;
use donorpulse_cluster::{Linkage, Metric};
use donorpulse_core::pipeline::{Pipeline, PipelineRun};
use donorpulse_core::report::{Fig2a, Fig2b, Fig3, Fig4, Fig5, Fig6, Fig7, PaperReport, Table1};
use donorpulse_core::state_clusters::StateClustering;
use donorpulse_geo::Geocoder;
use donorpulse_obs::MetricsRegistry;
use donorpulse_text::{extract_mentions, KeywordQuery, Organ};
use donorpulse_twitter::{Corpus, TwitterSimulation};
use std::process::ExitCode;

struct Options {
    scale: f64,
    seed: u64,
    threads: usize,
    json: Option<String>,
    metrics: bool,
    faults: String,
    /// Wire frame layout the stream source requests:
    /// `v1` | `v2` (the default) | `v2-borrowed` (v2 frames decoded
    /// through borrowed views — the zero-copy path). Artifacts are
    /// byte-identical for every mode; `--wire v1` is the compatibility
    /// flag for the legacy one-record-per-frame layout.
    wire: String,
    /// Campaign manifest path (`--campaigns`); `None` senses only the
    /// built-in organ-donation campaign.
    campaigns: Option<String>,
    /// `None` = the single-consumer front-half; `Some(n)` = the
    /// sharded consumer group (`n` = 0 means auto).
    shards: Option<usize>,
    /// `Some(n)` = the cross-process consumer group: n shard-worker
    /// *processes* under a supervising router (`core::procgroup`).
    procs: Option<usize>,
    /// `shard-worker`: this worker's shard index.
    shard: Option<usize>,
    /// `shard-worker`: unix-socket path to dial.
    connect: Option<String>,
    /// `shard-worker`: frames ride stdin/stdout instead of a socket.
    stdio: bool,
    /// `shard-worker` test hook: crash (exit 17, no checkpoint) after
    /// admitting this many tweets.
    die_after: Option<u64>,
    /// `stream --procs` test hook: `I:M` = worker I's first
    /// incarnation dies after admitting M tweets (supervisor respawns
    /// and resumes it).
    kill_worker: Option<String>,
    /// `stream --procs`: directory for supervisor + per-worker logs.
    worker_log_dir: Option<String>,
    /// `stream --procs`: `socket` (default) or `pipe`.
    transport: String,
    checkpoint_dir: Option<String>,
    checkpoint_every: u64,
    resume: bool,
    kill_after: Option<u64>,
    dead_letter_dir: Option<String>,
    /// Keep only the newest K complete checkpoint epochs (0 = keep all).
    checkpoint_retain: usize,
    /// `reshard`: target shard count for the offline repartition.
    to_shards: Option<usize>,
    /// `stream --shards/--procs`: `K:M` = online re-shard drill — swap
    /// the running group to M shards after K routed tweets.
    reshard_at: Option<String>,
    /// `serve`: TCP port to bind (0 = ephemeral, reported on stdout).
    port: u16,
    /// `serve`: HTTP worker threads.
    workers: usize,
    /// `loadgen`: concurrent closed-loop clients.
    clients: usize,
    /// `loadgen`: total requests across all clients.
    requests: u64,
    /// `loadgen`/`http-get`: daemon address (HOST:PORT).
    addr: Option<String>,
    /// `http-get`: request path.
    path: String,
    /// `http-get`: conditional request entity tag (sent verbatim).
    if_none_match: Option<String>,
    /// `http-get`: POST instead of GET.
    post: bool,
    command: String,
}

fn parse_args() -> Result<Options, String> {
    let mut scale = 0.25;
    let mut seed = 0x0D01_07AB;
    let mut threads = 0;
    let mut json = None;
    let mut metrics = false;
    let mut faults = "off".to_string();
    let mut wire = "v2".to_string();
    let mut campaigns = None;
    let mut shards = None;
    let mut procs = None;
    let mut shard = None;
    let mut connect = None;
    let mut stdio = false;
    let mut die_after = None;
    let mut kill_worker = None;
    let mut worker_log_dir = None;
    let mut transport = "socket".to_string();
    let mut checkpoint_dir = None;
    let mut checkpoint_every = 512;
    let mut resume = false;
    let mut kill_after = None;
    let mut dead_letter_dir = None;
    let mut checkpoint_retain = 0;
    let mut to_shards = None;
    let mut reshard_at = None;
    let mut port = 0u16;
    let mut workers = 4usize;
    let mut clients = 4usize;
    let mut requests = 2000u64;
    let mut addr = None;
    let mut path = "/healthz".to_string();
    let mut if_none_match = None;
    let mut post = false;
    let mut command = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--seed" => {
                seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => {
                threads = args
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--json" => {
                json = Some(args.next().ok_or("--json needs a path")?);
            }
            "--full" => scale = 1.0,
            "--metrics" => metrics = true,
            "--faults" => {
                faults = args.next().ok_or("--faults needs a mode")?;
            }
            "--wire" => {
                wire = args.next().ok_or("--wire needs a mode")?;
            }
            "--campaigns" => {
                campaigns = Some(args.next().ok_or("--campaigns needs a manifest path")?);
            }
            "--shards" => {
                shards = Some(
                    args.next()
                        .ok_or("--shards needs a count (0 = auto)")?
                        .parse()
                        .map_err(|e| format!("bad --shards: {e}"))?,
                );
            }
            "--procs" => {
                procs = Some(
                    args.next()
                        .ok_or("--procs needs a process count (0 = auto)")?
                        .parse()
                        .map_err(|e| format!("bad --procs: {e}"))?,
                );
            }
            "--shard" => {
                shard = Some(
                    args.next()
                        .ok_or("--shard needs a shard index")?
                        .parse()
                        .map_err(|e| format!("bad --shard: {e}"))?,
                );
            }
            "--connect" => {
                connect = Some(args.next().ok_or("--connect needs a socket path")?);
            }
            "--stdio" => stdio = true,
            "--die-after" => {
                die_after = Some(
                    args.next()
                        .ok_or("--die-after needs an admitted-tweet count")?
                        .parse()
                        .map_err(|e| format!("bad --die-after: {e}"))?,
                );
            }
            "--kill-worker" => {
                kill_worker = Some(args.next().ok_or("--kill-worker needs I:M")?);
            }
            "--worker-log-dir" => {
                worker_log_dir = Some(args.next().ok_or("--worker-log-dir needs a path")?);
            }
            "--transport" => {
                transport = args.next().ok_or("--transport needs socket|pipe")?;
            }
            "--checkpoint-dir" => {
                checkpoint_dir = Some(args.next().ok_or("--checkpoint-dir needs a path")?);
            }
            "--checkpoint-every" => {
                checkpoint_every = args
                    .next()
                    .ok_or("--checkpoint-every needs a tweet count")?
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-every: {e}"))?;
            }
            "--resume" => resume = true,
            "--kill-after" => {
                kill_after = Some(
                    args.next()
                        .ok_or("--kill-after needs a routed-tweet count")?
                        .parse()
                        .map_err(|e| format!("bad --kill-after: {e}"))?,
                );
            }
            "--dead-letter-dir" => {
                dead_letter_dir = Some(args.next().ok_or("--dead-letter-dir needs a path")?);
            }
            "--checkpoint-retain" => {
                checkpoint_retain = args
                    .next()
                    .ok_or("--checkpoint-retain needs an epoch count (0 = keep all)")?
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-retain: {e}"))?;
            }
            "--to-shards" => {
                to_shards = Some(
                    args.next()
                        .ok_or("--to-shards needs a target shard count")?
                        .parse()
                        .map_err(|e| format!("bad --to-shards: {e}"))?,
                );
            }
            "--reshard-at" => {
                reshard_at = Some(args.next().ok_or("--reshard-at needs K:M")?);
            }
            "--port" => {
                port = args
                    .next()
                    .ok_or("--port needs a TCP port (0 = ephemeral)")?
                    .parse()
                    .map_err(|e| format!("bad --port: {e}"))?;
            }
            "--workers" => {
                workers = args
                    .next()
                    .ok_or("--workers needs a thread count")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--clients" => {
                clients = args
                    .next()
                    .ok_or("--clients needs a count")?
                    .parse()
                    .map_err(|e| format!("bad --clients: {e}"))?;
            }
            "--requests" => {
                requests = args
                    .next()
                    .ok_or("--requests needs a count")?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?;
            }
            "--addr" => {
                addr = Some(args.next().ok_or("--addr needs HOST:PORT")?);
            }
            "--path" => {
                path = args.next().ok_or("--path needs a request path")?;
            }
            "--if-none-match" => {
                if_none_match = Some(args.next().ok_or("--if-none-match needs an entity tag")?);
            }
            "--post" => post = true,
            "--help" | "-h" => {
                command = Some("help".to_string());
            }
            other if !other.starts_with('-') => command = Some(other.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(Options {
        scale,
        seed,
        threads,
        json,
        metrics,
        faults,
        wire,
        campaigns,
        shards,
        procs,
        shard,
        connect,
        stdio,
        die_after,
        kill_worker,
        worker_log_dir,
        transport,
        checkpoint_dir,
        checkpoint_every,
        resume,
        kill_after,
        dead_letter_dir,
        checkpoint_retain,
        to_shards,
        reshard_at,
        port,
        workers,
        clients,
        requests,
        addr,
        path,
        if_none_match,
        post,
        command: command.unwrap_or_else(|| "all".to_string()),
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.command == "help" {
        eprintln!("usage: repro [--scale S] [--seed N] [--threads T] [--json PATH] [--full] [--metrics] <command>");
        eprintln!();
        eprintln!("paper artifacts:");
        eprintln!("  all        every table and figure, in paper order");
        eprintln!("  metrics    per-stage wall times, tweets/sec, and domain counters");
        eprintln!("  bench      smoke benchmark: one instrumented run, written to BENCH_<n>.json");
        eprintln!("  stream     fault-tolerant streaming front-half;");
        eprintln!("             --faults off|recoverable|lossy|outage|geo-outage");
        eprintln!("             --wire v1|v2|v2-borrowed selects the frame layout the source");
        eprintln!("             requests (v2 = batched frames, the default; v2-borrowed =");
        eprintln!("             zero-copy decode; v1 = the legacy one-record-per-frame layout);");
        eprintln!("             artifacts are byte-identical for every wire mode.");
        eprintln!("             --campaigns FILE senses every campaign in the manifest over one");
        eprintln!("             firehose pass (multi-tenant; see docs/CAMPAIGNS.md). The primary");
        eprintln!("             (first) campaign's artifacts stay byte-identical to a");
        eprintln!("             single-campaign run; extra campaigns add CAMPAIGN lines.");
        eprintln!(
            "             --shards N (0=auto) runs the sharded consumer group; byte-identical"
        );
        eprintln!("             artifacts for every N. --checkpoint-dir D [--checkpoint-every K]");
        eprintln!(
            "             writes per-shard checkpoints; --kill-after M simulates a crash after"
        );
        eprintln!(
            "             M routed tweets; --resume restarts from the newest complete epoch;"
        );
        eprintln!(
            "             --checkpoint-retain K compacts all but the newest K complete epochs."
        );
        eprintln!("             --dead-letter-dir D writes abandoned records to a replayable log.");
        eprintln!(
            "             --procs N runs the same group as N supervised worker processes over"
        );
        eprintln!("             unix sockets (--transport socket|pipe); byte-identical to");
        eprintln!("             --shards N. --kill-worker I:M kills worker I after M admitted");
        eprintln!("             tweets (the supervisor respawns and resumes it from its last");
        eprintln!("             checkpoint); --worker-log-dir D captures per-worker stderr.");
        eprintln!("             --reshard-at K:M re-shards the running group online: after K");
        eprintln!("             routed tweets the group drains at a consistent cut and swaps to");
        eprintln!("             M shards in-process (threads) or M respawned workers (--procs;");
        eprintln!("             needs --checkpoint-dir) without restarting the stream.");
        eprintln!("  reshard    offline checkpoint repartition: --checkpoint-dir D --to-shards M");
        eprintln!("             rewrites the newest complete epoch for M shards so");
        eprintln!("             `stream --shards M --resume` accepts it (docs/SCALING.md).");
        eprintln!("  shard-worker  one worker process of the --procs group (spawned by the");
        eprintln!("             supervisor; needs --shard i --procs n and --connect P|--stdio)");
        eprintln!("  replay-dead-letters  re-run the degraded stream (same --scale/--seed/");
        eprintln!("             --faults), replay --dead-letter-dir D's log through the sensor,");
        eprintln!("             and verify full coverage is restored. --shards/--procs N");
        eprintln!("             reconstructs the consumer-group run (per-shard schedules).");
        eprintln!(
            "  bench-shards  shard-scaling smoke bench (N = 1, 2, 4) over the stream front-half"
        );
        eprintln!("  bench-stream  decode+admission throughput for v1 / v2 / v2-borrowed over");
        eprintln!("             identical pre-encoded deliveries -> BENCH_STREAM.json");
        eprintln!("  serve      always-on sensor daemon: sharded checkpointed ingest + an");
        eprintln!("             ETag-cached HTTP front-end. --port P (0=ephemeral, printed as");
        eprintln!("             `SERVING http://ADDR`), --workers N, plus the stream flags");
        eprintln!("             (--faults/--shards/--checkpoint-dir/--checkpoint-every/--resume).");
        eprintln!("             Runs until POST /shutdown; endpoints in docs/SERVING.md.");
        eprintln!("  loadgen    seeded closed-loop load generator against a running daemon:");
        eprintln!("             --addr HOST:PORT [--clients N] [--requests M] -> BENCH_SERVE.json");
        eprintln!("  http-get   one HTTP exchange: --addr HOST:PORT --path P [--if-none-match E]");
        eprintln!("             [--post]; body to stdout, status/ETag to stderr");
        eprintln!("  table1     Table I  - dataset statistics");
        eprintln!("  fig2a      Fig 2(a) - users per organ + Spearman vs transplants");
        eprintln!("  fig2b      Fig 2(b) - multi-organ mentions, users vs tweets");
        eprintln!("  fig3       Fig 3    - organ characterization");
        eprintln!("  fig4       Fig 4    - state characterization");
        eprintln!("  fig5       Fig 5    - relative-risk highlighted organs");
        eprintln!("  fig6       Fig 6    - hierarchical clustering of states");
        eprintln!("  fig7       Fig 7    - K-Means user clusters");
        eprintln!();
        eprintln!("ablations / extensions / controls:");
        eprintln!("  ablation-unit       user-level vs tweet-level characterization");
        eprintln!("  ablation-metric     Bhattacharyya vs Euclidean/cosine clustering");
        eprintln!("  ablation-highlight  winner-takes-all vs relative-risk");
        eprintln!("  ablation-geo        GPS-only vs profile-augmented geolocation");
        eprintln!("  extension-burst     plant an awareness event; recover it live");
        eprintln!("  extension-roles     behavioural user-role breakdown");
        eprintln!("  extension-pairs     within-tweet organ co-occurrence");
        eprintln!("  extension-fwer      permutation family-wise correction of Fig 5");
        eprintln!("  extension-moran     Moran's I spatial autocorrelation per organ");
        eprintln!("  control-null        falsification: remove the planted anomalies");
        eprintln!();
        eprintln!("--metrics appends the per-stage metrics table to any pipeline-backed");
        eprintln!("command; the `metrics` command prints it alone (with --json: as JSON).");
        eprintln!("--threads sets compute_threads for the analytics back-half (0 = all");
        eprintln!("cores); artifacts are bit-identical for any value, only wall times move.");
        return ExitCode::SUCCESS;
    }
    match dispatch(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(opts: &Options) -> Result<(), String> {
    eprintln!(
        "# donorpulse repro: {} at scale {} (seed {})",
        opts.command, opts.scale, opts.seed
    );
    match opts.command.as_str() {
        "ablation-geo" => return ablation_geo(opts),
        "ablation-unit" => return ablation_unit(opts),
        "extension-burst" => return extension_burst(opts),
        "control-null" => return control_null(opts),
        "stream" => return stream_command(opts),
        "shard-worker" => return shard_worker_command(opts),
        "reshard" => return reshard_command(opts),
        "replay-dead-letters" => return replay_command(opts),
        "bench-shards" => return bench_shards(opts),
        "bench-stream" => return bench_stream(opts),
        "serve" => return serve_command(opts),
        "loadgen" => return loadgen_command(opts),
        "http-get" => return http_get_command(opts),
        _ => {}
    }

    let run = pipeline_run(
        opts,
        matches!(opts.command.as_str(), "fig7" | "all" | "metrics" | "bench"),
    )?;
    let mut json_value = None;
    match opts.command.as_str() {
        "metrics" => {
            println!("{}", run.metrics.render_table());
            if let Some(path) = &opts.json {
                std::fs::write(path, run.metrics.to_json())
                    .map_err(|e| format!("writing {path}: {e}"))?;
                eprintln!("# wrote {path}");
            }
        }
        "bench" => {
            println!("{}", run.metrics.render_table());
            let total_nanos: u64 = run.metrics.stages.iter().map(|s| s.wall_nanos).sum();
            // The snapshot's to_json() is already valid JSON; wrap it in
            // a header recording the knobs so a BENCH file is
            // self-describing without a schema lookup. calibration_nanos
            // times a fixed CPU-bound workload on this machine, so
            // scripts/bench_check.sh can compare runs across machines by
            // normalizing wall time against it.
            let body = format!(
                "{{\n  \"bench\": {{\"scale\": {}, \"seed\": {}, \"compute_threads\": {}, \"total_wall_nanos\": {}, \"calibration_nanos\": {}}},\n  \"snapshot\": {}\n}}\n",
                opts.scale,
                opts.seed,
                opts.threads,
                total_nanos,
                calibration_nanos(),
                run.metrics.to_json()
            );
            let path = match &opts.json {
                Some(p) => p.clone(),
                None => next_bench_path()?,
            };
            std::fs::write(&path, body).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("# wrote {path}");
        }
        "all" => {
            let report = PaperReport::from_run(&run).map_err(|e| e.to_string())?;
            println!("{}", report.render());
            json_value = Some(serde_json::to_value(&report).map_err(|e| e.to_string())?);
        }
        "table1" => {
            let t = Table1::from_run(&run);
            println!("{}", t.render());
            json_value = Some(serde_json::to_value(&t).map_err(|e| e.to_string())?);
        }
        "fig2a" => {
            let f = Fig2a::from_run(&run).map_err(|e| e.to_string())?;
            println!("{}", f.render());
            json_value = Some(serde_json::to_value(&f).map_err(|e| e.to_string())?);
        }
        "fig2b" => {
            let f = Fig2b::from_run(&run);
            println!("{}", f.render());
            json_value = Some(serde_json::to_value(&f).map_err(|e| e.to_string())?);
        }
        "fig3" => {
            let f = Fig3::from_run(&run);
            println!("{}", f.render());
            json_value = Some(serde_json::to_value(&f).map_err(|e| e.to_string())?);
        }
        "fig4" => {
            let f = Fig4::from_run(&run);
            println!("{}", f.render());
            json_value = Some(serde_json::to_value(&f).map_err(|e| e.to_string())?);
        }
        "fig5" => {
            let f = Fig5::from_run(&run);
            println!("{}", f.render());
            // Global sanity gate before reading per-cell highlights.
            let chi = run
                .risk
                .global_independence_test()
                .map_err(|e| e.to_string())?;
            println!(
                "global state x organ independence: chi2 = {:.1}, df = {}, p = {:.2e}, Cramer's V = {:.3}",
                chi.statistic, chi.df, chi.p_value, chi.cramers_v
            );
            json_value = Some(serde_json::to_value(&f).map_err(|e| e.to_string())?);
        }
        "fig6" => {
            let f = Fig6::from_run(&run).map_err(|e| e.to_string())?;
            println!("{}", f.render());
            // Textual equivalents of the paper's dendrogram + heatmap.
            let sc = &run.state_clusters;
            println!(
                "{}",
                donorpulse_cluster::render::render_dendrogram(&sc.dendrogram, |i| sc.states[i]
                    .abbr()
                    .to_string())
            );
            let leaf_indices: Vec<usize> = sc.dendrogram.leaf_order();
            println!(
                "{}",
                donorpulse_cluster::render::render_heatmap(&sc.distances, &leaf_indices, |i| {
                    sc.states[i].abbr().to_string()
                })
            );
            json_value = Some(serde_json::to_value(&f).map_err(|e| e.to_string())?);
        }
        "fig7" => {
            let f = Fig7::from_run(&run).ok_or("user clustering was disabled")?;
            println!("{}", f.render());
            json_value = Some(serde_json::to_value(&f).map_err(|e| e.to_string())?);
        }
        "ablation-metric" => ablation_metric(&run)?,
        "ablation-highlight" => ablation_highlight(&run)?,
        "extension-pairs" => {
            let co = donorpulse_core::cooccurrence::CoOccurrence::compute(&run.usa)
                .map_err(|e| e.to_string())?;
            println!("{}", co.render(15));
            json_value = Some(serde_json::to_value(co.associations()).map_err(|e| e.to_string())?);
        }
        "extension-moran" => {
            println!("MORAN'S I: spatial autocorrelation of organ shares over state contiguity");
            println!("{:<10} {:>8} {:>10} {:>8}", "organ", "I", "E[I]", "p");
            for organ in Organ::ALL {
                let m =
                    donorpulse_core::spatial::organ_morans_i(&run.regions, organ, 200, opts.seed)
                        .map_err(|e| e.to_string())?;
                println!(
                    "{:<10} {:>8.3} {:>10.3} {:>8.3}{}",
                    organ.name(),
                    m.i,
                    m.expected,
                    m.p_value,
                    if m.significant_at(0.05) { " *" } else { "" }
                );
            }
            println!(
                "(the simulator plants state-level anomalies, not regional ones,
 so near-zero I is the expected honest result — see core::spatial docs)"
            );
        }
        "extension-fwer" => {
            let adjusted = donorpulse_core::relative_risk::permutation::adjust(
                &run.attention,
                &run.user_states,
                run.risk.alpha,
                100,
                opts.seed,
            )
            .map_err(|e| e.to_string())?;
            println!(
                "PERMUTATION FWER CORRECTION ({} permutations, critical z = {:.2})",
                adjusted.permutations, adjusted.critical_z
            );
            println!("surviving highlights:");
            for (state, organ, z) in &adjusted.surviving {
                println!("  {:<22} {:<10} z = {:.2}", state.name(), organ.name(), z);
            }
            println!(
                "dropped by correction: {} (uncorrected noise)",
                adjusted.dropped.len()
            );
            json_value =
                Some(serde_json::to_value(&adjusted.surviving).map_err(|e| e.to_string())?);
        }
        "extension-roles" => {
            let rb = donorpulse_core::roles::RoleBreakdown::compute(
                &run.usa,
                &run.attention,
                donorpulse_core::roles::RoleThresholds::default(),
            )
            .map_err(|e| e.to_string())?;
            println!("{}", rb.render());
            json_value = Some(
                serde_json::to_value(
                    rb.counts
                        .iter()
                        .map(|(r, c)| (r.name(), c))
                        .collect::<std::collections::BTreeMap<_, _>>(),
                )
                .map_err(|e| e.to_string())?,
            );
        }
        other => return Err(format!("unknown command {other}")),
    }
    if opts.metrics && !matches!(opts.command.as_str(), "metrics" | "bench") {
        println!();
        println!("{}", run.metrics.render_table());
    }
    if let (Some(path), Some(value)) = (&opts.json, json_value) {
        std::fs::write(
            path,
            serde_json::to_string_pretty(&value).map_err(|e| e.to_string())?,
        )
        .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("# wrote {path}");
    }
    Ok(())
}

fn pipeline_run(opts: &Options, need_user_clusters: bool) -> Result<PipelineRun, String> {
    let mut config = donorpulse_bench::config_at_scale(opts.scale, opts.seed);
    config.run_user_clustering = need_user_clusters;
    config.compute_threads = opts.threads;
    if opts.metrics || matches!(opts.command.as_str(), "metrics" | "bench") {
        config.metrics = MetricsRegistry::enabled();
    }
    Pipeline::new().run(config).map_err(|e| e.to_string())
}

/// Times a fixed CPU-bound workload (FNV over 32 MiB of generated
/// bytes) on this machine. Committed baselines record this next to
/// their wall times; a checker comparing two machines divides each
/// wall time by its own calibration so a slower CI runner doesn't read
/// as a code regression.
fn calibration_nanos() -> u64 {
    let start = std::time::Instant::now();
    let mut f = Fnv::new();
    for i in 0..4_000_000u64 {
        f.u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    std::hint::black_box(f.0);
    start.elapsed().as_nanos() as u64
}

/// `repro bench-shards`: shard-scaling smoke benchmark of the
/// streaming front-half at N = 1, 2, 4 (clean faults, so the work
/// measured is routing + admission + sensing, not retry sleeps).
/// Prints wall time and throughput per shard count; with `--json`,
/// writes a hand-rolled summary.
fn bench_shards(opts: &Options) -> Result<(), String> {
    use donorpulse_core::shard::{run_sharded_stream, ShardConfig, ShardServices};
    use donorpulse_core::stream_consumer::StreamPipelineConfig;
    use donorpulse_twitter::fault::FaultConfig;

    let config = donorpulse_bench::config_at_scale(opts.scale, opts.seed);
    let sim = TwitterSimulation::generate(config.generator.clone()).map_err(|e| e.to_string())?;
    let geocoder = Geocoder::new();
    println!(
        "SHARD SCALING BENCH (scale {}, seed {})",
        opts.scale, opts.seed
    );
    println!(
        "{:<8} {:>12} {:>14} {:>18}",
        "shards", "wall ms", "tweets", "tweets/sec"
    );
    let mut rows = Vec::new();
    for shards in [1usize, 2, 4] {
        let start = std::time::Instant::now();
        let run = run_sharded_stream(
            &sim,
            &geocoder,
            ShardServices::Shared(&geocoder),
            FaultConfig::none(),
            None,
            ShardConfig {
                shards,
                stream: StreamPipelineConfig::default(),
                ..ShardConfig::default()
            },
        )
        .map_err(|e| e.to_string())?;
        let nanos = start.elapsed().as_nanos() as u64;
        let tweets = run.delivered_tweets;
        let per_sec = tweets as f64 / (nanos as f64 / 1e9);
        println!(
            "{:<8} {:>12.1} {:>14} {:>18.0}",
            shards,
            nanos as f64 / 1e6,
            tweets,
            per_sec
        );
        rows.push((shards, nanos, tweets));
    }
    if let Some(path) = &opts.json {
        let body_rows: Vec<String> = rows
            .iter()
            .map(|(s, n, t)| {
                format!("    {{\"shards\": {s}, \"wall_nanos\": {n}, \"tweets\": {t}}}")
            })
            .collect();
        let body = format!(
            "{{\n  \"scale\": {},\n  \"seed\": {},\n  \"calibration_nanos\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
            opts.scale,
            opts.seed,
            calibration_nanos(),
            body_rows.join(",\n")
        );
        std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("# wrote {path}");
    }
    Ok(())
}

/// `repro bench-stream`: decode+admission throughput of the stream
/// consumer's hot path for the three wire paths — v1 (one frame per
/// tweet), v2 (batched frames, owned decode), and v2-borrowed (batched
/// frames decoded through borrowed [`donorpulse_twitter::TweetView`]s,
/// materialized only
/// past the dedup gate).
///
/// The same simulated firehose is pre-encoded once per mode (encoding
/// is the producer's cost); the timed loop is the consumer's wire
/// path: decode -> resequence/dedup -> geo admission -> batched
/// `sync_channel` handoff to a fingerprinting sink thread. Admission
/// runs against a warmed per-user table because that is the
/// steady-state shape of `GeoAdmission` (each user geocodes once,
/// every later tweet is a lookup). The keyword-filter stage is
/// deliberately *not* in the timed loop: its text normalization cost
/// is identical for every wire version and runs on its own pipeline
/// thread, so including it would only dilute the quantity this bench
/// exists to track. All three paths must produce the same sink
/// fingerprint — the bench aborts if the fast path changes a byte.
///
/// Writes `BENCH_STREAM.json` (or `--json PATH`) with best-of-N wall
/// times, tweets/sec, and the v2 / v2-borrowed speedups over v1;
/// `scripts/bench_check.sh` gates on `speedup_v2_borrowed_vs_v1`.
fn bench_stream(opts: &Options) -> Result<(), String> {
    use donorpulse_core::stream_consumer::{Resequencer, StreamPipelineConfig};
    use donorpulse_twitter::wire::{decode_any, BatchFrame};
    use donorpulse_twitter::{Tweet, WireMode};
    use std::sync::mpsc;

    const ROUNDS: usize = 5;

    let config = donorpulse_bench::config_at_scale(opts.scale, opts.seed);
    let sim = TwitterSimulation::generate(config.generator.clone()).map_err(|e| e.to_string())?;
    let geocoder = Geocoder::new();
    let admitted: Vec<bool> = sim
        .users()
        .iter()
        .map(|u| {
            matches!(
                geocoder.resolve_profile(&u.profile_location),
                donorpulse_geo::ParseOutcome::Resolved { .. }
            )
        })
        .collect();
    let defaults = StreamPipelineConfig::default();

    // One timed pass over pre-encoded frames. Returns (wall nanos,
    // tweets decoded, sink fingerprint).
    let run_once = |frames: &[Vec<u8>], borrowed: bool| -> Result<(u64, u64, u64), String> {
        let (tx, rx) = mpsc::sync_channel::<Vec<Tweet>>(defaults.channel_capacity);
        let sink = std::thread::spawn(move || {
            let mut f = Fnv::new();
            let mut n = 0u64;
            for batch in rx {
                for t in batch {
                    f.u64(t.id.0);
                    f.u64(t.user.0);
                    f.u64(t.created_at.0);
                    f.write(t.text.as_bytes());
                    match t.geo {
                        Some((lat, lon)) => {
                            f.u64(1);
                            f.u64(lat.to_bits());
                            f.u64(lon.to_bits());
                        }
                        None => f.u64(0),
                    }
                    n += 1;
                }
            }
            (f.0, n)
        });

        let send = |ready: &mut Vec<Tweet>, tx: &mpsc::SyncSender<Vec<Tweet>>| {
            if ready.is_empty() {
                return Ok(());
            }
            tx.send(std::mem::take(ready))
                .map_err(|_| "bench sink hung up".to_string())
        };

        // The admission gate runs *before* the resequencer in every
        // path, so all three do the same work in the same order — but
        // only the borrowed path gets to reject a tweet before its
        // strings exist. v1 and owned v2 have already paid the
        // allocations at decode time; that difference is the point.
        let start = std::time::Instant::now();
        let mut reseq = Resequencer::new(defaults.reorder_depth);
        let mut ready: Vec<Tweet> = Vec::new();
        let mut decoded = 0u64;
        for frame in frames {
            if borrowed {
                let views =
                    BatchFrame::decode_views(frame).map_err(|e| format!("v2 decode: {e}"))?;
                decoded += views.len() as u64;
                for view in &views {
                    if admitted[view.user.0 as usize] {
                        reseq.push_view(view, &mut ready);
                    }
                }
            } else {
                let tweets = decode_any(frame).map_err(|e| format!("decode: {e}"))?;
                decoded += tweets.len() as u64;
                for tweet in tweets {
                    if admitted[tweet.user.0 as usize] {
                        reseq.push(tweet, &mut ready);
                    }
                }
            }
            send(&mut ready, &tx)?;
        }
        reseq.flush(&mut ready);
        send(&mut ready, &tx)?;
        drop(tx);
        let (fp, _sunk) = sink.join().map_err(|_| "bench sink panicked".to_string())?;
        Ok((start.elapsed().as_nanos() as u64, decoded, fp))
    };

    let paths: [(&str, WireMode, bool); 3] = [
        ("v1", WireMode::V1, false),
        ("v2", WireMode::v2(), false),
        ("v2-borrowed", WireMode::v2(), true),
    ];
    println!(
        "STREAM DECODE+ADMISSION BENCH (scale {}, seed {}, best of {ROUNDS})",
        opts.scale, opts.seed
    );
    println!(
        "{:<14} {:>12} {:>14} {:>18} {:>8}",
        "path", "wall ms", "tweets", "tweets/sec", "vs v1"
    );
    // (label, best nanos, tweets decoded, sink fingerprint) per path.
    let mut results: Vec<(&str, u64, u64, u64)> = Vec::new();
    for (label, mode, borrowed) in paths {
        let frames: Vec<Vec<u8>> = sim.stream().frames_with(mode).collect();
        let mut best: Option<(u64, u64, u64)> = None;
        for _ in 0..ROUNDS {
            let (nanos, decoded, fp) = run_once(&frames, borrowed)?;
            match best {
                Some((b_nanos, b_decoded, b_fp)) => {
                    if (decoded, fp) != (b_decoded, b_fp) {
                        return Err(format!("{label}: results differ between rounds"));
                    }
                    if nanos < b_nanos {
                        best = Some((nanos, decoded, fp));
                    }
                }
                None => best = Some((nanos, decoded, fp)),
            }
        }
        let (nanos, decoded, fp) = best.expect("at least one round");
        let v1_nanos = results.first().map_or(nanos, |r| r.1);
        println!(
            "{:<14} {:>12.1} {:>14} {:>18.0} {:>7.2}x",
            label,
            nanos as f64 / 1e6,
            decoded,
            decoded as f64 / (nanos as f64 / 1e9),
            v1_nanos as f64 / nanos as f64
        );
        results.push((label, nanos, decoded, fp));
    }
    // The fast paths must be invisible to everything downstream.
    let (_, _, base_decoded, base_fp) = results[0];
    for &(label, _, decoded, fp) in &results[1..] {
        if (decoded, fp) != (base_decoded, base_fp) {
            return Err(format!(
                "{label} produced different output than v1 (decoded {decoded} vs {base_decoded}, \
                 fingerprint {fp:016x} vs {base_fp:016x})"
            ));
        }
    }
    println!("  sink fingerprint        {base_fp:016x} (identical across paths)");

    // Ingest-side microbench: the same decoded batches fed to an
    // IncrementalSensor per tweet vs through ingest_batch, which
    // touches each user's track-map entry once per run of consecutive
    // same-user tweets. Both paths must land on the same export
    // fingerprint — the batch path is an amortization, not a semantic
    // change (incremental.rs carries the equivalence test).
    let batches: Vec<Vec<Tweet>> = sim
        .stream()
        .frames_with(WireMode::v2())
        .map(|frame| decode_any(&frame).map_err(|e| format!("decode: {e}")))
        .collect::<Result<_, _>>()?;
    let ingest_total: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let users = sim.users();
    let run_ingest = |batched: bool| -> (u64, u64) {
        let profile_of = |id: donorpulse_twitter::UserId| {
            users.get(id.0 as usize).map(|u| u.profile_location.clone())
        };
        let mut sensor =
            donorpulse_core::incremental::IncrementalSensor::new(&geocoder, profile_of);
        let start = std::time::Instant::now();
        for batch in &batches {
            if batched {
                sensor.ingest_batch(batch);
            } else {
                for tweet in batch {
                    sensor.ingest(tweet);
                }
            }
        }
        let nanos = start.elapsed().as_nanos() as u64;
        (nanos, sensor.export().fingerprint())
    };
    println!("INGEST BENCH (same batches, per-tweet vs batched, best of {ROUNDS})");
    println!(
        "{:<14} {:>12} {:>14} {:>18} {:>10}",
        "path", "wall ms", "tweets", "tweets/sec", "vs ingest"
    );
    let mut ingest_results: Vec<(&str, u64, u64)> = Vec::new();
    for (label, batched) in [("ingest", false), ("ingest-batch", true)] {
        let mut best: Option<(u64, u64)> = None;
        for _ in 0..ROUNDS {
            let (nanos, fp) = run_ingest(batched);
            match best {
                Some((b_nanos, b_fp)) => {
                    if fp != b_fp {
                        return Err(format!("{label}: exports differ between rounds"));
                    }
                    if nanos < b_nanos {
                        best = Some((nanos, fp));
                    }
                }
                None => best = Some((nanos, fp)),
            }
        }
        let (nanos, fp) = best.expect("at least one round");
        let base_nanos = ingest_results.first().map_or(nanos, |r| r.1);
        println!(
            "{:<14} {:>12.1} {:>14} {:>18.0} {:>9.2}x",
            label,
            nanos as f64 / 1e6,
            ingest_total,
            ingest_total as f64 / (nanos as f64 / 1e9),
            base_nanos as f64 / nanos as f64
        );
        ingest_results.push((label, nanos, fp));
    }
    if ingest_results[0].2 != ingest_results[1].2 {
        return Err(format!(
            "ingest_batch produced a different export than per-tweet ingest \
             ({:016x} vs {:016x})",
            ingest_results[1].2, ingest_results[0].2
        ));
    }
    println!(
        "  export fingerprint      {:016x} (identical across paths)",
        ingest_results[0].2
    );

    let speedup = |i: usize| results[0].1 as f64 / results[i].1 as f64;
    let path = opts
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_STREAM.json".to_string());
    // Hand-rolled JSON, like the other bench writers, so the summary
    // also works where serde_json is stubbed out.
    let rows: Vec<String> = results
        .iter()
        .map(|(label, nanos, decoded, _)| {
            format!(
                "    {{\"wire\": \"{label}\", \"best_nanos\": {nanos}, \"tweets_per_sec\": {:.0}}}",
                *decoded as f64 / (*nanos as f64 / 1e9)
            )
        })
        .collect();
    let ingest_rows: Vec<String> = ingest_results
        .iter()
        .map(|(label, nanos, _)| {
            format!(
                "    {{\"path\": \"{label}\", \"best_nanos\": {nanos}, \"tweets_per_sec\": {:.0}}}",
                ingest_total as f64 / (*nanos as f64 / 1e9)
            )
        })
        .collect();
    let body = format!(
        "{{\n  \"bench_stream\": {{\"scale\": {}, \"seed\": {}, \"tweets\": {}, \"rounds\": {}}},\n  \"sink_fingerprint\": \"{:016x}\",\n  \"paths\": [\n{}\n  ],\n  \"speedup_v2_vs_v1\": {:.3},\n  \"speedup_v2_borrowed_vs_v1\": {:.3},\n  \"ingest_paths\": [\n{}\n  ],\n  \"speedup_ingest_batch\": {:.3},\n  \"calibration_nanos\": {}\n}}\n",
        opts.scale,
        opts.seed,
        base_decoded,
        ROUNDS,
        base_fp,
        rows.join(",\n"),
        speedup(1),
        speedup(2),
        ingest_rows.join(",\n"),
        ingest_results[0].1 as f64 / ingest_results[1].1 as f64,
        calibration_nanos()
    );
    std::fs::write(&path, body).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("# wrote {path}");
    Ok(())
}

/// First unused `BENCH_<n>.json` in the working directory, so repeated
/// benchmark runs accumulate a comparable trajectory instead of
/// overwriting each other.
fn next_bench_path() -> Result<String, String> {
    for n in 0..10_000u32 {
        let path = format!("BENCH_{n}.json");
        if !std::path::Path::new(&path).exists() {
            return Ok(path);
        }
    }
    Err("more than 10000 BENCH_<n>.json files present".to_string())
}

/// FNV-1a over explicit byte feeds — the fingerprint the stream
/// command prints so two runs' artifacts can be diffed as text without
/// serializing the full report (and without serde, so it also works in
/// stub-dependency environments).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// `repro stream`: run the fault-tolerant streaming front-half
/// (`donorpulse_core::stream_consumer`) under a seeded fault schedule,
/// print deterministic artifact fingerprints to stdout, and verify the
/// sensor snapshot against the clean batch pipeline in-process.
///
/// With `--faults off` and `--faults recoverable` the stdout is
/// required to be byte-identical — `scripts/verify.sh` diffs exactly
/// that. Fault/retry accounting (which legitimately differs between
/// modes) goes to stderr.
fn stream_command(opts: &Options) -> Result<(), String> {
    use donorpulse_core::stream_consumer::{run_faulted_stream, StreamPipelineConfig};
    use donorpulse_geo::service::FlakyGeocoder;

    if opts.shards.is_some() && opts.procs.is_some() {
        return Err("--shards and --procs are mutually exclusive".to_string());
    }
    if opts.procs.is_some() {
        return proc_stream_command(opts);
    }
    if opts.shards.is_some() {
        return sharded_stream_command(opts);
    }
    if opts.resume || opts.kill_after.is_some() {
        return Err(
            "--resume / --kill-after require --shards or --procs (a consumer group)".to_string(),
        );
    }

    let config = donorpulse_bench::config_at_scale(opts.scale, opts.seed);
    let sim = TwitterSimulation::generate(config.generator.clone()).map_err(|e| e.to_string())?;
    let geocoder = Geocoder::new();

    let (faults, flaky) = fault_setup(opts)?;
    let (wire, borrowed_decode) = wire_setup(opts)?;
    let campaigns = campaign_setup(opts)?;
    let stream_config = StreamPipelineConfig {
        metrics: MetricsRegistry::enabled(),
        wire,
        borrowed_decode,
        campaigns: std::sync::Arc::clone(&campaigns),
        ..StreamPipelineConfig::default()
    };
    eprintln!("# stream: faults={} wire={}", opts.faults, opts.wire);
    let run = match flaky {
        Some(cfg) => {
            let service = FlakyGeocoder::new(&geocoder, cfg);
            let r = run_faulted_stream(&sim, &geocoder, &service, faults, stream_config);
            eprintln!(
                "# geocoding service: {} calls, {} transient errors, {} timeouts, {} spikes, {} virtual ms",
                service.calls(),
                service.transient_errors(),
                service.timeouts(),
                service.spikes(),
                service.virtual_latency_ms()
            );
            r
        }
        None => run_faulted_stream(&sim, &geocoder, &geocoder, faults, stream_config),
    };
    report_fault_accounting(&run.fault_stats, run.source_aborted, run.parked_at_end);
    write_dead_letters(opts, &run.dead_letters)?;

    let sensor = &run.sensor;
    snapshot_and_check(
        opts,
        &sim,
        sensor,
        run.delivered_tweets,
        run.expected_tweets,
        &run.metrics,
        run.parked_at_end,
        run.source_aborted,
    )?;
    print_campaign_lines(&campaigns, sensor, &run.extra_sensors)
}

/// The faulted-stream variant of `repro stream --shards N`: the
/// consumer-group subsystem, with optional checkpointing, crash
/// simulation, and resume. Stdout is required to be byte-identical to
/// the unsharded `repro stream` for every shard count in clean and
/// recoverable modes — `scripts/verify.sh` diffs exactly that.
fn sharded_stream_command(opts: &Options) -> Result<(), String> {
    use donorpulse_core::checkpoint::{CheckpointStore, DirCheckpointStore};
    use donorpulse_core::shard::{resolve_shards, run_sharded_stream, ShardConfig, ShardServices};
    use donorpulse_core::stream_consumer::{RetryPolicy, StreamPipelineConfig};
    use donorpulse_geo::service::{FlakyGeocoder, LocationService};

    let shards = opts.shards.unwrap_or(1);
    let config = donorpulse_bench::config_at_scale(opts.scale, opts.seed);
    let sim = TwitterSimulation::generate(config.generator.clone()).map_err(|e| e.to_string())?;
    let geocoder = Geocoder::new();
    let (faults, flaky) = fault_setup(opts)?;

    let store: Option<DirCheckpointStore> = match &opts.checkpoint_dir {
        Some(dir) => Some(DirCheckpointStore::open(dir).map_err(|e| format!("{dir}: {e}"))?),
        None => None,
    };
    let store_ref: Option<&dyn CheckpointStore> = store.as_ref().map(|s| s as &dyn CheckpointStore);

    // Reconnect jitter is on for the group (seeded, per-consumer) so N
    // shards never thundering-herd the endpoint. It moves only the
    // virtual clock, never the artifacts.
    let (wire, borrowed_decode) = wire_setup(opts)?;
    let campaigns = campaign_setup(opts)?;
    let stream_config = StreamPipelineConfig {
        metrics: MetricsRegistry::enabled(),
        geo_retry: RetryPolicy {
            max_attempts: 6,
            jitter_permille: 500,
            jitter_seed: opts.seed,
            ..RetryPolicy::default()
        },
        wire,
        borrowed_decode,
        campaigns: std::sync::Arc::clone(&campaigns),
        ..StreamPipelineConfig::default()
    };
    let reshard_at = parse_reshard_at(opts)?;
    let shard_config = ShardConfig {
        shards,
        checkpoint_every: if store.is_some() {
            opts.checkpoint_every
        } else {
            0
        },
        kill_after: opts.kill_after,
        resume: opts.resume,
        checkpoint_retain: opts.checkpoint_retain,
        checkpoint_final: false,
        reshard_at,
        stream: stream_config,
    };

    eprintln!(
        "# stream: faults={} wire={} shards={} checkpoint_every={} resume={}",
        opts.faults, opts.wire, shards, shard_config.checkpoint_every, opts.resume
    );
    // Degraded presets get one geocoding service *per shard*, each
    // with a schedule derived from its shard index — a shard's failure
    // schedule becomes a function of its own admission sequence alone,
    // which is what makes a degraded sharded run deterministic (and
    // its dead-letter log reconstructible by `replay-dead-letters`).
    let resolved = resolve_shards(shards);
    let run = match flaky {
        Some(cfg) => {
            let services: Vec<FlakyGeocoder> = (0..resolved)
                .map(|s| FlakyGeocoder::new(&geocoder, cfg.for_shard(s, resolved)))
                .collect();
            let refs: Vec<&(dyn LocationService + Sync)> = services
                .iter()
                .map(|s| s as &(dyn LocationService + Sync))
                .collect();
            match reshard_at {
                // An online swap needs the post-swap schedule table
                // too: each new slot derives its schedule from (slot,
                // M), exactly what an uninterrupted M-shard run uses.
                Some((_, to)) => {
                    let after: Vec<FlakyGeocoder> = (0..to)
                        .map(|s| FlakyGeocoder::new(&geocoder, cfg.for_shard(s, to)))
                        .collect();
                    let after_refs: Vec<&(dyn LocationService + Sync)> = after
                        .iter()
                        .map(|s| s as &(dyn LocationService + Sync))
                        .collect();
                    run_sharded_stream(
                        &sim,
                        &geocoder,
                        ShardServices::Phased {
                            before: refs,
                            after: after_refs,
                        },
                        faults,
                        store_ref,
                        shard_config,
                    )
                }
                None => run_sharded_stream(
                    &sim,
                    &geocoder,
                    ShardServices::PerShard(refs),
                    faults,
                    store_ref,
                    shard_config,
                ),
            }
        }
        None => run_sharded_stream(
            &sim,
            &geocoder,
            ShardServices::Shared(&geocoder),
            faults,
            store_ref,
            shard_config,
        ),
    }
    .map_err(|e| e.to_string())?;

    report_fault_accounting(&run.fault_stats, run.source_aborted, run.parked_at_end);
    if let Some(epoch) = run.resumed_from_epoch {
        eprintln!(
            "# stream: resumed from checkpoint epoch {epoch} ({} replayed past the cut)",
            run.metrics.counter("resume_replayed_total").unwrap_or(0)
        );
    }
    if let Some((epoch, to)) = run.resharded {
        eprintln!(
            "# reshard: swapped to {to} shards at epoch {epoch} ({} tracks moved, {} parked moved)",
            run.metrics
                .counter("reshard_tracks_moved_total")
                .unwrap_or(0),
            run.metrics
                .counter("reshard_parked_moved_total")
                .unwrap_or(0)
        );
    }
    eprintln!(
        "# shards: {} workers, routed per shard {:?}, imbalance {} permille",
        run.shards,
        run.shard_tweets,
        run.metrics
            .gauge("shard_imbalance_ratio_permille")
            .unwrap_or(0)
    );
    write_dead_letters(opts, &run.dead_letters)?;

    if run.killed {
        // The simulated crash: no final artifacts, only checkpoints.
        println!("STREAM KILLED");
        println!(
            "  routed before kill      {}",
            run.shard_tweets.iter().sum::<u64>()
        );
        println!("  checkpoints through     epoch {}", run.last_epoch);
        eprintln!("# stream: killed by --kill-after; resume with --resume");
        return Ok(());
    }
    let sensor = run
        .sensor
        .as_ref()
        .expect("non-killed sharded run always merges a sensor");
    snapshot_and_check(
        opts,
        &sim,
        sensor,
        run.delivered_tweets,
        run.expected_tweets,
        &run.metrics,
        run.parked_at_end,
        run.source_aborted,
    )?;
    print_campaign_lines(&campaigns, sensor, &run.extra_sensors)
}

/// `repro stream --procs N`: the cross-process consumer group. The
/// router (this process) spawns N `repro shard-worker` children,
/// streams framed DPWF batches to them, supervises deaths, and merges
/// their reports. Stdout is required to be byte-identical to
/// `--shards N` for every fault preset, and to the unsharded run for
/// clean/recoverable presets — `scripts/verify.sh` diffs exactly that.
fn proc_stream_command(opts: &Options) -> Result<(), String> {
    use donorpulse_core::checkpoint::{CheckpointStore, DirCheckpointStore};
    use donorpulse_core::procgroup::{
        run_proc_group, ProcGroupConfig, ProcTransport, WorkerSpawner, DEFAULT_RESPAWN_LIMIT,
    };
    use donorpulse_core::shard::ShardConfig;
    use donorpulse_core::stream_consumer::{RetryPolicy, StreamPipelineConfig};

    let procs = opts.procs.unwrap_or(1);
    let config = donorpulse_bench::config_at_scale(opts.scale, opts.seed);
    let sim = TwitterSimulation::generate(config.generator.clone()).map_err(|e| e.to_string())?;
    let geocoder = Geocoder::new();
    let (faults, _flaky) = fault_setup(opts)?; // workers derive their own services

    let store: Option<DirCheckpointStore> = match &opts.checkpoint_dir {
        Some(dir) => Some(DirCheckpointStore::open(dir).map_err(|e| format!("{dir}: {e}"))?),
        None => None,
    };
    let store_ref: Option<&dyn CheckpointStore> = store.as_ref().map(|s| s as &dyn CheckpointStore);

    let (wire, borrowed_decode) = wire_setup(opts)?;
    let campaigns = campaign_setup(opts)?;
    let stream_config = StreamPipelineConfig {
        metrics: MetricsRegistry::enabled(),
        geo_retry: RetryPolicy {
            max_attempts: 6,
            jitter_permille: 500,
            jitter_seed: opts.seed,
            ..RetryPolicy::default()
        },
        wire,
        borrowed_decode,
        campaigns: std::sync::Arc::clone(&campaigns),
        ..StreamPipelineConfig::default()
    };
    let shard_config = ShardConfig {
        shards: procs,
        checkpoint_every: if store.is_some() {
            opts.checkpoint_every
        } else {
            0
        },
        kill_after: opts.kill_after,
        resume: opts.resume,
        checkpoint_retain: opts.checkpoint_retain,
        checkpoint_final: false,
        reshard_at: parse_reshard_at(opts)?,
        stream: stream_config,
    };

    let transport = match opts.transport.as_str() {
        "socket" => ProcTransport::Socket,
        "pipe" => ProcTransport::Pipe,
        other => return Err(format!("unknown --transport {other} (use socket|pipe)")),
    };
    let kill_worker = match &opts.kill_worker {
        Some(spec) => {
            let (i, m) = spec
                .split_once(':')
                .ok_or("--kill-worker wants I:M (worker index : admitted tweets)")?;
            Some((
                i.parse()
                    .map_err(|e| format!("bad --kill-worker index: {e}"))?,
                m.parse()
                    .map_err(|e| format!("bad --kill-worker count: {e}"))?,
            ))
        }
        None => None,
    };
    // The worker spawn recipe: same binary, same generative and fault
    // knobs, the shard-worker verb; the supervisor appends the
    // per-spawn slot and transport arguments itself.
    let mut args = vec![
        "--scale".to_string(),
        opts.scale.to_string(),
        "--seed".to_string(),
        opts.seed.to_string(),
        "--faults".to_string(),
        opts.faults.clone(),
        "--wire".to_string(),
        opts.wire.clone(),
    ];
    if let Some(manifest) = &opts.campaigns {
        args.push("--campaigns".to_string());
        args.push(manifest.clone());
    }
    if let Some(dir) = &opts.checkpoint_dir {
        args.push("--checkpoint-dir".to_string());
        args.push(dir.clone());
    }
    args.push("shard-worker".to_string());
    let spawner = WorkerSpawner {
        program: std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?,
        args,
        log_dir: opts.worker_log_dir.as_ref().map(std::path::PathBuf::from),
    };

    eprintln!(
        "# stream: faults={} wire={} procs={} checkpoint_every={} resume={}",
        opts.faults, opts.wire, procs, shard_config.checkpoint_every, opts.resume
    );
    eprintln!(
        "# procgroup: transport={}{}",
        transport.label(),
        match kill_worker {
            Some((i, m)) => format!(" kill-worker={i} after {m} admitted"),
            None => String::new(),
        }
    );
    let run = run_proc_group(
        &sim,
        &geocoder,
        faults,
        store_ref,
        &spawner,
        ProcGroupConfig {
            shard: shard_config,
            transport,
            kill_worker,
            respawn_limit: DEFAULT_RESPAWN_LIMIT,
        },
    )
    .map_err(|e| e.to_string())?;

    report_fault_accounting(&run.fault_stats, run.source_aborted, run.parked_at_end);
    if let Some(epoch) = run.resumed_from_epoch {
        eprintln!(
            "# stream: resumed from checkpoint epoch {epoch} ({} replayed past the cut)",
            run.metrics.counter("resume_replayed_total").unwrap_or(0)
        );
    }
    eprintln!(
        "# shards: {} workers, routed per shard {:?}, imbalance {} permille",
        run.shards,
        run.shard_tweets,
        run.metrics
            .gauge("shard_imbalance_ratio_permille")
            .unwrap_or(0)
    );
    if let Some((epoch, to)) = run.resharded {
        eprintln!(
            "# reshard: swapped to {to} worker processes at epoch {epoch} ({} tracks moved, {} parked moved)",
            run.metrics
                .counter("reshard_tracks_moved_total")
                .unwrap_or(0),
            run.metrics
                .counter("reshard_parked_moved_total")
                .unwrap_or(0)
        );
    }
    eprintln!(
        "# procgroup: {} spawns, {} respawns, {} worker deaths, {} acks, {} replayed frames",
        run.metrics.counter("procgroup_spawns_total").unwrap_or(0),
        run.metrics.counter("procgroup_respawns_total").unwrap_or(0),
        run.metrics
            .counter("supervisor_worker_deaths_total")
            .unwrap_or(0),
        run.metrics.counter("procgroup_acks_total").unwrap_or(0),
        run.metrics
            .counter("supervisor_replayed_batches_total")
            .unwrap_or(0)
    );
    write_dead_letters(opts, &run.dead_letters)?;

    if run.killed {
        println!("STREAM KILLED");
        println!(
            "  routed before kill      {}",
            run.shard_tweets.iter().sum::<u64>()
        );
        println!("  checkpoints through     epoch {}", run.last_epoch);
        eprintln!("# stream: killed by --kill-after; resume with --resume");
        return Ok(());
    }
    let sensor = run
        .sensor
        .as_ref()
        .expect("non-killed procgroup run always merges a sensor");
    snapshot_and_check(
        opts,
        &sim,
        sensor,
        run.delivered_tweets,
        run.expected_tweets,
        &run.metrics,
        run.parked_at_end,
        run.source_aborted,
    )?;
    print_campaign_lines(&campaigns, sensor, &run.extra_sensors)
}

/// Parses `--reshard-at K:M`: swap the running group to M shards
/// after K routed tweets.
fn parse_reshard_at(opts: &Options) -> Result<Option<(u64, usize)>, String> {
    match &opts.reshard_at {
        Some(spec) => {
            let (k, m) = spec
                .split_once(':')
                .ok_or("--reshard-at wants K:M (routed tweets : new shard count)")?;
            Ok(Some((
                k.parse()
                    .map_err(|e| format!("bad --reshard-at point: {e}"))?,
                m.parse()
                    .map_err(|e| format!("bad --reshard-at count: {e}"))?,
            )))
        }
        None => Ok(None),
    }
}

/// `repro reshard`: offline checkpoint repartition. Loads the newest
/// complete epoch from `--checkpoint-dir`, re-keys every campaign's
/// exports (plus park residue) by the `--to-shards` user-hash modulus,
/// and rewrites the store as a valid layout that
/// `stream --shards M --resume` accepts. The resumed artifacts are
/// byte-identical to an uninterrupted run at M for the
/// shard-count-invariant fault presets — `scripts/verify.sh` diffs
/// exactly that.
fn reshard_command(opts: &Options) -> Result<(), String> {
    use donorpulse_core::checkpoint::DirCheckpointStore;
    use donorpulse_core::reshard_checkpoints;

    let Some(dir) = &opts.checkpoint_dir else {
        return Err(
            "reshard needs --checkpoint-dir D (an existing checkpoint layout)".to_string(),
        );
    };
    let to = opts.to_shards.ok_or("reshard needs --to-shards M")?;
    let store = DirCheckpointStore::open(dir).map_err(|e| format!("{dir}: {e}"))?;
    let metrics = MetricsRegistry::enabled();
    let report = reshard_checkpoints(&store, to, &metrics).map_err(|e| e.to_string())?;
    println!("RESHARD OK");
    println!(
        "  shards                  {} -> {}",
        report.from_shards, report.to_shards
    );
    println!("  epoch                   {}", report.epoch);
    match report.high_water {
        Some(hw) => println!("  router high water       {}", hw.0),
        None => println!("  router high water       (none)"),
    }
    println!("  campaigns               {}", report.campaigns.join(", "));
    println!(
        "  tracks                  {} ({} moved)",
        report.tracks_total, report.tracks_moved
    );
    println!(
        "  parked residue          {} ({} moved)",
        report.parked_total, report.parked_moved
    );
    println!("  files removed           {}", report.files_removed);
    println!("  bytes written           {}", report.bytes_written);
    eprintln!(
        "# reshard: resume with `repro stream --shards {} --resume --checkpoint-dir {dir}`",
        report.to_shards
    );
    Ok(())
}

/// `repro shard-worker --shard i --procs n`: one worker process of the
/// cross-process consumer group. Spawned by the supervisor, never run
/// by hand (but harmless if you do: it just waits for a router).
fn shard_worker_command(opts: &Options) -> Result<(), String> {
    use donorpulse_core::checkpoint::{CheckpointStore, DirCheckpointStore};
    use donorpulse_core::procgroup::{run_shard_worker, ShardWorkerConfig, WorkerConn};
    use donorpulse_core::stream_consumer::{RetryPolicy, StreamPipelineConfig};
    use donorpulse_geo::service::FlakyGeocoder;

    let shard = opts.shard.ok_or("shard-worker needs --shard i")?;
    let procs = opts.procs.ok_or("shard-worker needs --procs n")?;
    let conn = match (&opts.connect, opts.stdio) {
        (Some(path), false) => WorkerConn::Socket(std::path::PathBuf::from(path)),
        (None, true) => WorkerConn::Stdio,
        _ => return Err("shard-worker needs exactly one of --connect PATH or --stdio".to_string()),
    };

    let config = donorpulse_bench::config_at_scale(opts.scale, opts.seed);
    let sim = TwitterSimulation::generate(config.generator.clone()).map_err(|e| e.to_string())?;
    let geocoder = Geocoder::new();
    let (_faults, flaky) = fault_setup(opts)?; // wire faults live router-side
    let (wire, borrowed_decode) = wire_setup(opts)?;

    let store: Option<DirCheckpointStore> = match &opts.checkpoint_dir {
        Some(dir) => Some(DirCheckpointStore::open(dir).map_err(|e| format!("{dir}: {e}"))?),
        None => None,
    };
    let store_ref: Option<&dyn CheckpointStore> = store.as_ref().map(|s| s as &dyn CheckpointStore);

    // Must mirror the sharded/procgroup stream config exactly: the
    // per-consumer retry policy derived from it is part of the
    // deterministic schedule.
    let stream_config = StreamPipelineConfig {
        metrics: MetricsRegistry::enabled(),
        geo_retry: RetryPolicy {
            max_attempts: 6,
            jitter_permille: 500,
            jitter_seed: opts.seed,
            ..RetryPolicy::default()
        },
        wire,
        borrowed_decode,
        campaigns: campaign_setup(opts)?,
        ..StreamPipelineConfig::default()
    };
    let worker_config = ShardWorkerConfig {
        shard,
        shards: procs,
        stream: stream_config,
        die_after: opts.die_after,
    };
    eprintln!(
        "# shard-worker: slot {shard}/{procs} faults={} die_after={:?}",
        opts.faults, opts.die_after
    );
    match flaky {
        Some(cfg) => {
            let service = FlakyGeocoder::new(&geocoder, cfg.for_shard(shard, procs));
            run_shard_worker(&sim, &geocoder, &service, store_ref, worker_config, conn)
        }
        None => run_shard_worker(&sim, &geocoder, &geocoder, store_ref, worker_config, conn),
    }
    .map_err(|e| e.to_string())
}

/// `repro replay-dead-letters`: deterministically reconstruct the
/// degraded run that produced `--dead-letter-dir`'s log (same scale,
/// seed, and fault mode), feed the on-disk log back through its
/// sensor, and verify the combination restores clean coverage.
///
/// Pass `--shards N` (or `--procs N`) to reconstruct a consumer-group
/// run instead: each shard's flaky geocoder draws from its own
/// shard-salted schedule, so the reconstructed group abandons exactly
/// the records the original did regardless of thread interleaving. The
/// log itself is shard-agnostic — entries are verbatim frames or typed
/// tweets either way.
fn replay_command(opts: &Options) -> Result<(), String> {
    use donorpulse_core::checkpoint::DeadLetterLog;
    use donorpulse_core::stream_consumer::{
        replay_dead_letters, replay_dead_letters_matching, run_faulted_stream, StreamPipelineConfig,
    };
    use donorpulse_geo::service::FlakyGeocoder;

    if let Some(group) = opts.shards.or(opts.procs) {
        return replay_sharded_command(opts, group);
    }
    let Some(dir) = &opts.dead_letter_dir else {
        return Err("replay-dead-letters needs --dead-letter-dir D (from a prior `repro stream --dead-letter-dir D`)".to_string());
    };
    let path = format!("{dir}/dead-letters.dpwf");
    let log = DeadLetterLog::read_from(&path).map_err(|e| format!("reading {path}: {e}"))?;

    let config = donorpulse_bench::config_at_scale(opts.scale, opts.seed);
    let sim = TwitterSimulation::generate(config.generator.clone()).map_err(|e| e.to_string())?;
    let geocoder = Geocoder::new();
    let (faults, flaky) = fault_setup(opts)?;
    let (wire, borrowed_decode) = wire_setup(opts)?;
    let campaigns = campaign_setup(opts)?;
    let stream_config = StreamPipelineConfig {
        metrics: MetricsRegistry::enabled(),
        wire,
        borrowed_decode,
        campaigns: std::sync::Arc::clone(&campaigns),
        ..StreamPipelineConfig::default()
    };
    eprintln!(
        "# replay-dead-letters: faults={} wire={} log={path}",
        opts.faults, opts.wire
    );
    let mut run = match flaky {
        Some(cfg) => {
            let service = FlakyGeocoder::new(&geocoder, cfg);
            run_faulted_stream(&sim, &geocoder, &service, faults, stream_config)
        }
        None => run_faulted_stream(&sim, &geocoder, &geocoder, faults, stream_config),
    };
    report_fault_accounting(&run.fault_stats, run.source_aborted, run.parked_at_end);
    if run.dead_letters.len() != log.len() {
        eprintln!(
            "# warning: reconstructed run abandoned {} records but the log holds {} — \
             the log was written with different knobs",
            run.dead_letters.len(),
            log.len()
        );
    }

    // A multi-campaign log holds the union of every campaign's
    // abandonments; each sensor takes back exactly its own share.
    let report = if campaigns.len() == 1 {
        replay_dead_letters(&mut run.sensor, &log)
    } else {
        replay_dead_letters_matching(&mut run.sensor, &log, |text| {
            campaigns.primary().matches(text)
        })
    };
    println!("DEAD-LETTER REPLAY");
    println!("  log entries             {}", log.len());
    println!("  tweets replayed         {}", report.tweets_replayed);
    println!("  frames recovered        {}", report.frames_recovered);
    println!("  frames undecodable      {}", report.frames_undecodable);
    println!("  duplicates              {}", report.duplicates);
    for (campaign, sensor) in campaigns.extras().iter().zip(run.extra_sensors.iter_mut()) {
        let r = replay_dead_letters_matching(sensor, &log, |text| campaign.matches(text));
        println!(
            "  campaign {}: replayed {}, duplicates {}",
            campaign.name(),
            r.tweets_replayed,
            r.duplicates
        );
    }

    let artifacts_ok = snapshot_and_check(
        opts,
        &sim,
        &run.sensor,
        run.delivered_tweets,
        run.expected_tweets,
        &run.metrics,
        run.parked_at_end,
        run.source_aborted,
    )?;
    print_campaign_lines(&campaigns, &run.sensor, &run.extra_sensors)?;
    let restored = artifacts_ok && run.sensor.tweets_seen() == run.expected_tweets;
    println!(
        "  coverage restored       {}",
        if restored { "yes" } else { "NO" }
    );
    // Modes whose damage is fully represented in (sensor ∪ dead
    // letters) must come back to clean coverage exactly; lossy/outage
    // wires genuinely destroyed records, so there replay is best-effort.
    let must_restore = matches!(opts.faults.as_str(), "off" | "recoverable" | "geo-outage");
    if must_restore && !restored {
        return Err(format!(
            "faults={}: replaying the dead-letter log must restore clean coverage, but it did not",
            opts.faults
        ));
    }
    if !must_restore && !restored {
        eprintln!(
            "# replay: coverage still short of clean (expected: faults={} destroys records)",
            opts.faults
        );
    }
    Ok(())
}

/// The consumer-group arm of `repro replay-dead-letters`: rebuild the
/// degraded sharded run in-process (per-shard flaky schedules make its
/// abandonment set deterministic), then feed the on-disk log back
/// through the merged sensor. This is how a degraded `--procs N` run is
/// made whole after the fact: same knobs + same log → clean coverage.
fn replay_sharded_command(opts: &Options, group: usize) -> Result<(), String> {
    use donorpulse_core::checkpoint::DeadLetterLog;
    use donorpulse_core::shard::{resolve_shards, run_sharded_stream, ShardConfig, ShardServices};
    use donorpulse_core::stream_consumer::{
        replay_dead_letters, replay_dead_letters_matching, RetryPolicy, StreamPipelineConfig,
    };
    use donorpulse_geo::service::{FlakyGeocoder, LocationService};

    let Some(dir) = &opts.dead_letter_dir else {
        return Err("replay-dead-letters needs --dead-letter-dir D (from a prior `repro stream --dead-letter-dir D`)".to_string());
    };
    let path = format!("{dir}/dead-letters.dpwf");
    let log = DeadLetterLog::read_from(&path).map_err(|e| format!("reading {path}: {e}"))?;

    let config = donorpulse_bench::config_at_scale(opts.scale, opts.seed);
    let sim = TwitterSimulation::generate(config.generator.clone()).map_err(|e| e.to_string())?;
    let geocoder = Geocoder::new();
    let (faults, flaky) = fault_setup(opts)?;
    let (wire, borrowed_decode) = wire_setup(opts)?;
    let campaigns = campaign_setup(opts)?;
    let stream_config = StreamPipelineConfig {
        metrics: MetricsRegistry::enabled(),
        geo_retry: RetryPolicy {
            max_attempts: 6,
            jitter_permille: 500,
            jitter_seed: opts.seed,
            ..RetryPolicy::default()
        },
        wire,
        borrowed_decode,
        campaigns: std::sync::Arc::clone(&campaigns),
        ..StreamPipelineConfig::default()
    };
    // A run that re-sharded online must be reconstructed with the
    // same swap: the abandonment set depends on which schedule table
    // each tweet was admitted under. No store is attached, so the
    // swap's checkpoint rewrite is skipped — the topology change
    // alone is replayed.
    let reshard_at = parse_reshard_at(opts)?;
    let shard_config = ShardConfig {
        shards: group,
        checkpoint_every: 0,
        kill_after: None,
        resume: false,
        checkpoint_retain: 0,
        checkpoint_final: false,
        reshard_at,
        stream: stream_config,
    };
    eprintln!(
        "# replay-dead-letters: faults={} wire={} shards={group} log={path}",
        opts.faults, opts.wire
    );
    let resolved = resolve_shards(group);
    let mut run = match &flaky {
        Some(cfg) => {
            let services: Vec<FlakyGeocoder> = (0..resolved)
                .map(|s| FlakyGeocoder::new(&geocoder, cfg.for_shard(s, resolved)))
                .collect();
            let refs: Vec<&(dyn LocationService + Sync)> = services
                .iter()
                .map(|s| s as &(dyn LocationService + Sync))
                .collect();
            match reshard_at {
                Some((_, to)) => {
                    let after: Vec<FlakyGeocoder> = (0..to)
                        .map(|s| FlakyGeocoder::new(&geocoder, cfg.for_shard(s, to)))
                        .collect();
                    let after_refs: Vec<&(dyn LocationService + Sync)> = after
                        .iter()
                        .map(|s| s as &(dyn LocationService + Sync))
                        .collect();
                    run_sharded_stream(
                        &sim,
                        &geocoder,
                        ShardServices::Phased {
                            before: refs,
                            after: after_refs,
                        },
                        faults,
                        None,
                        shard_config,
                    )
                }
                None => run_sharded_stream(
                    &sim,
                    &geocoder,
                    ShardServices::PerShard(refs),
                    faults,
                    None,
                    shard_config,
                ),
            }
        }
        None => run_sharded_stream(
            &sim,
            &geocoder,
            ShardServices::Shared(&geocoder),
            faults,
            None,
            shard_config,
        ),
    }
    .map_err(|e| e.to_string())?;
    report_fault_accounting(&run.fault_stats, run.source_aborted, run.parked_at_end);
    if run.dead_letters.len() != log.len() {
        eprintln!(
            "# warning: reconstructed run abandoned {} records but the log holds {} — \
             the log was written with different knobs",
            run.dead_letters.len(),
            log.len()
        );
    }

    let sensor = run
        .sensor
        .as_mut()
        .expect("non-killed sharded run always merges a sensor");
    let report = if campaigns.len() == 1 {
        replay_dead_letters(sensor, &log)
    } else {
        replay_dead_letters_matching(sensor, &log, |text| campaigns.primary().matches(text))
    };
    println!("DEAD-LETTER REPLAY");
    println!("  log entries             {}", log.len());
    println!("  tweets replayed         {}", report.tweets_replayed);
    println!("  frames recovered        {}", report.frames_recovered);
    println!("  frames undecodable      {}", report.frames_undecodable);
    println!("  duplicates              {}", report.duplicates);
    for (campaign, sensor) in campaigns.extras().iter().zip(run.extra_sensors.iter_mut()) {
        let r = replay_dead_letters_matching(sensor, &log, |text| campaign.matches(text));
        println!(
            "  campaign {}: replayed {}, duplicates {}",
            campaign.name(),
            r.tweets_replayed,
            r.duplicates
        );
    }

    let artifacts_ok = snapshot_and_check(
        opts,
        &sim,
        run.sensor.as_ref().expect("sensor checked above"),
        run.delivered_tweets,
        run.expected_tweets,
        &run.metrics,
        run.parked_at_end,
        run.source_aborted,
    )?;
    print_campaign_lines(
        &campaigns,
        run.sensor.as_ref().expect("sensor checked above"),
        &run.extra_sensors,
    )?;
    let restored = artifacts_ok
        && run
            .sensor
            .as_ref()
            .expect("sensor checked above")
            .tweets_seen()
            == run.expected_tweets;
    println!(
        "  coverage restored       {}",
        if restored { "yes" } else { "NO" }
    );
    let must_restore = matches!(opts.faults.as_str(), "off" | "recoverable" | "geo-outage");
    if must_restore && !restored {
        return Err(format!(
            "faults={}: replaying the dead-letter log must restore clean coverage, but it did not",
            opts.faults
        ));
    }
    if !must_restore && !restored {
        eprintln!(
            "# replay: coverage still short of clean (expected: faults={} destroys records)",
            opts.faults
        );
    }
    Ok(())
}

/// `repro serve`: the always-on sensor daemon. Sharded, checkpointed
/// ingest feeds the live sensor; an ETag-cached HTTP front-end answers
/// `/healthz`, `/metrics`, `/report`, `/risk`, and the attention
/// endpoints from epoch-consistent snapshots (docs/SERVING.md). The
/// analytic knobs mirror `repro all` exactly, so a served `/report` is
/// byte-identical to the batch pipeline's report over the same
/// artifacts. Runs until `POST /shutdown`; the stream always drains
/// first and the closing checkpoint cut + fingerprint are reported so
/// a served run stays resumable and verifiable like a CLI run.
fn serve_command(opts: &Options) -> Result<(), String> {
    use donorpulse_core::checkpoint::{CheckpointStore, DirCheckpointStore, MemCheckpointStore};
    use donorpulse_core::serve::{run_serve_daemon, ServeConfig};
    use donorpulse_core::shard::ShardConfig;
    use donorpulse_core::stream_consumer::{RetryPolicy, StreamPipelineConfig};
    use donorpulse_geo::service::FlakyGeocoder;
    use std::io::Write as _;

    let config = donorpulse_bench::config_at_scale(opts.scale, opts.seed);
    let sim = TwitterSimulation::generate(config.generator.clone()).map_err(|e| e.to_string())?;
    let geocoder = Geocoder::new();
    let (faults, flaky) = fault_setup(opts)?;
    let (serve_wire, serve_borrowed) = wire_setup(opts)?;

    // Query-time analytics mirror `repro all` (user clustering on,
    // same scale/seed config, same compute_threads); metrics stay
    // disabled so per-epoch analyses don't pollute the live registry.
    let mut analytics = donorpulse_bench::config_at_scale(opts.scale, opts.seed);
    analytics.run_user_clustering = true;
    analytics.compute_threads = opts.threads;
    analytics.metrics = MetricsRegistry::disabled();

    let dir_store: Option<DirCheckpointStore> = match &opts.checkpoint_dir {
        Some(dir) => Some(DirCheckpointStore::open(dir).map_err(|e| format!("{dir}: {e}"))?),
        None => None,
    };
    let mem_store = MemCheckpointStore::new();
    let store: &dyn CheckpointStore = match &dir_store {
        Some(s) => s,
        None => &mem_store,
    };
    if opts.procs.is_some() && dir_store.is_none() {
        // Worker processes cannot see an in-memory store; the durable
        // directory is what the consumer group checkpoints into.
        return Err(
            "serve --procs needs --checkpoint-dir D (workers are separate processes)".to_string(),
        );
    }
    if opts.shards.is_some() && opts.procs.is_some() {
        return Err("--shards and --procs are mutually exclusive".to_string());
    }
    let procgroup = match opts.procs {
        Some(_) => {
            use donorpulse_core::procgroup::{
                ProcGroupLaunch, ProcTransport, WorkerSpawner, DEFAULT_RESPAWN_LIMIT,
            };
            let transport = match opts.transport.as_str() {
                "socket" => ProcTransport::Socket,
                "pipe" => ProcTransport::Pipe,
                other => return Err(format!("unknown --transport {other} (use socket|pipe)")),
            };
            let mut args = vec![
                "--scale".to_string(),
                opts.scale.to_string(),
                "--seed".to_string(),
                opts.seed.to_string(),
                "--faults".to_string(),
                opts.faults.clone(),
                "--wire".to_string(),
                opts.wire.clone(),
            ];
            if let Some(manifest) = &opts.campaigns {
                args.push("--campaigns".to_string());
                args.push(manifest.clone());
            }
            if let Some(dir) = &opts.checkpoint_dir {
                args.push("--checkpoint-dir".to_string());
                args.push(dir.clone());
            }
            args.push("shard-worker".to_string());
            Some(ProcGroupLaunch {
                spawner: WorkerSpawner {
                    program: std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?,
                    args,
                    log_dir: opts.worker_log_dir.as_ref().map(std::path::PathBuf::from),
                },
                transport,
                respawn_limit: DEFAULT_RESPAWN_LIMIT,
            })
        }
        None => None,
    };

    let shard_config = ShardConfig {
        shards: opts.shards.or(opts.procs).unwrap_or(1),
        checkpoint_every: opts.checkpoint_every,
        kill_after: None,
        resume: opts.resume,
        checkpoint_retain: opts.checkpoint_retain,
        // A daemon always flushes the closing cut: a served run must
        // stay resumable exactly like a checkpointed CLI run.
        checkpoint_final: true,
        reshard_at: parse_reshard_at(opts)?,
        stream: StreamPipelineConfig {
            metrics: MetricsRegistry::enabled(),
            geo_retry: RetryPolicy {
                max_attempts: 6,
                jitter_permille: 500,
                jitter_seed: opts.seed,
                ..RetryPolicy::default()
            },
            wire: serve_wire,
            borrowed_decode: serve_borrowed,
            campaigns: campaign_setup(opts)?,
            ..StreamPipelineConfig::default()
        },
    };
    let serve_config = ServeConfig {
        addr: format!("127.0.0.1:{}", opts.port),
        workers: opts.workers,
        analytics,
        shard: shard_config,
        procgroup,
        ..ServeConfig::default()
    };
    eprintln!(
        "# serve: faults={} wire={} shards={}{} checkpoint_every={} workers={} store={}",
        opts.faults,
        opts.wire,
        serve_config.shard.shards,
        if serve_config.procgroup.is_some() {
            " (processes)"
        } else {
            ""
        },
        serve_config.shard.checkpoint_every,
        serve_config.workers,
        if dir_store.is_some() { "dir" } else { "mem" }
    );
    let on_ready = |addr: std::net::SocketAddr| {
        // The contract scripts/tests wait on: one flushed line naming
        // the bound (possibly ephemeral) address.
        println!("SERVING http://{addr}");
        let _ = std::io::stdout().flush();
    };
    let outcome = match flaky {
        Some(cfg) => {
            let service = FlakyGeocoder::new(&geocoder, cfg);
            run_serve_daemon(
                &sim,
                &geocoder,
                &service,
                faults,
                store,
                serve_config,
                on_ready,
            )
        }
        None => run_serve_daemon(
            &sim,
            &geocoder,
            &geocoder,
            faults,
            store,
            serve_config,
            on_ready,
        ),
    }
    .map_err(|e| e.to_string())?;

    report_fault_accounting(
        &outcome.stream.fault_stats,
        outcome.stream.source_aborted,
        outcome.stream.parked_at_end,
    );
    let m = &outcome.metrics;
    println!("SERVE CLOSED");
    println!(
        "  requests served         {}",
        m.counter("http_requests_total").unwrap_or(0)
    );
    println!(
        "  responses 200/304       {} / {}",
        m.counter("http_responses_200_total").unwrap_or(0),
        m.counter("http_responses_304_total").unwrap_or(0)
    );
    println!(
        "  snapshots published     {}",
        m.counter("serve_snapshots_published_total").unwrap_or(0)
    );
    println!("  final checkpoint epoch  {}", outcome.final_epoch);
    match outcome.closing_fingerprint {
        Some(fp) => println!("  closing fingerprint     {fp:016x}"),
        None => println!("  closing fingerprint     (none: ingest incomplete)"),
    }
    Ok(())
}

/// `repro loadgen`: the seeded closed-loop load generator. Hammers a
/// running daemon with the realistic polling mix (report-heavy,
/// remembered ETags sent back as `If-None-Match`) and writes the
/// measured QPS, latency percentiles, and 304 hit rate to
/// `BENCH_SERVE.json` (or `--json PATH`).
fn loadgen_command(opts: &Options) -> Result<(), String> {
    use donorpulse_core::serve::{run_loadgen, LoadgenConfig};

    let Some(addr) = &opts.addr else {
        return Err(
            "loadgen needs --addr HOST:PORT (from the SERVING line of `repro serve`)".to_string(),
        );
    };
    let addr: std::net::SocketAddr = addr.parse().map_err(|e| format!("bad --addr: {e}"))?;
    let config = LoadgenConfig {
        clients: opts.clients,
        requests: opts.requests,
        seed: opts.seed,
        ..LoadgenConfig::default()
    };
    eprintln!(
        "# loadgen: {} clients, {} requests against {addr} (seed {})",
        config.clients, config.requests, opts.seed
    );
    let r = run_loadgen(addr, config);
    println!("LOADGEN REPORT");
    println!("  requests                {}", r.requests);
    println!(
        "  responses 200/304/other {} / {} / {}",
        r.responses_200, r.responses_304, r.responses_other
    );
    println!("  transport errors        {}", r.errors);
    println!(
        "  wall ms                 {:.1}",
        r.elapsed_nanos as f64 / 1e6
    );
    println!(
        "  latency p50 / p99 us    {:.0} / {:.0}",
        r.p50_nanos as f64 / 1e3,
        r.p99_nanos as f64 / 1e3
    );
    println!("  qps                     {:.0}", r.qps);
    println!("  etag 304 hit rate       {:.3}", r.hit_rate);
    let path = opts
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_SERVE.json".to_string());
    // Hand-rolled JSON, like the other bench writers, so the summary
    // also works where serde_json is stubbed out.
    let body = format!(
        "{{\n  \"loadgen\": {{\"clients\": {}, \"requests\": {}, \"seed\": {}}},\n  \"responses\": {{\"ok\": {}, \"not_modified\": {}, \"other\": {}, \"errors\": {}}},\n  \"latency\": {{\"p50_nanos\": {}, \"p99_nanos\": {}}},\n  \"elapsed_nanos\": {},\n  \"qps\": {:.1},\n  \"not_modified_rate\": {:.4},\n  \"calibration_nanos\": {}\n}}\n",
        opts.clients,
        opts.requests,
        opts.seed,
        r.responses_200,
        r.responses_304,
        r.responses_other,
        r.errors,
        r.p50_nanos,
        r.p99_nanos,
        r.elapsed_nanos,
        r.qps,
        r.hit_rate,
        calibration_nanos()
    );
    std::fs::write(&path, body).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("# wrote {path}");
    if r.responses_200 + r.responses_304 == 0 {
        return Err("loadgen: no successful responses — is the daemon serving?".to_string());
    }
    Ok(())
}

/// `repro http-get`: one HTTP exchange against a running daemon — the
/// smoke gates' curl substitute (the toolchain is the only dependency
/// CI gets to assume). Body goes to stdout verbatim (so `/report` can
/// be diffed against `repro all`); status and ETag go to stderr as
/// `# status:` / `# etag:` lines.
fn http_get_command(opts: &Options) -> Result<(), String> {
    use donorpulse_core::serve::HttpClient;
    use std::io::Write as _;

    let Some(addr) = &opts.addr else {
        return Err("http-get needs --addr HOST:PORT".to_string());
    };
    let addr: std::net::SocketAddr = addr.parse().map_err(|e| format!("bad --addr: {e}"))?;
    let mut client = HttpClient::new(addr);
    let reply = if opts.post {
        client.post(&opts.path)
    } else {
        client.get(&opts.path, opts.if_none_match.as_deref())
    }
    .map_err(|e| e.to_string())?;
    eprintln!("# status: {}", reply.status);
    if let Some(etag) = &reply.etag {
        eprintln!("# etag: {etag}");
    }
    std::io::stdout()
        .write_all(&reply.body)
        .map_err(|e| e.to_string())?;
    Ok(())
}

/// Maps `--faults` to a stream fault schedule plus (for every mode but
/// `off`) a flaky geocoding-service configuration.
fn fault_setup(
    opts: &Options,
) -> Result<
    (
        donorpulse_twitter::fault::FaultConfig,
        Option<donorpulse_geo::service::FlakyConfig>,
    ),
    String,
> {
    use donorpulse_geo::service::FlakyConfig;
    use donorpulse_twitter::fault::FaultConfig;
    match opts.faults.as_str() {
        "off" => Ok((FaultConfig::none(), None)),
        "recoverable" => Ok((
            FaultConfig::recoverable(opts.seed),
            Some(FlakyConfig::flaky(opts.seed)),
        )),
        "lossy" => Ok((
            FaultConfig::lossy(opts.seed),
            Some(FlakyConfig::flaky(opts.seed)),
        )),
        "outage" => Ok((
            FaultConfig::lossy(opts.seed),
            Some(FlakyConfig::outage(opts.seed, 64, u64::MAX)),
        )),
        // A clean wire but a geocoding service that dies permanently:
        // every abandoned tweet is intact, so a dead-letter replay can
        // restore clean coverage exactly.
        "geo-outage" => Ok((
            FaultConfig::none(),
            Some(FlakyConfig::outage(opts.seed, 64, u64::MAX)),
        )),
        other => Err(format!(
            "unknown --faults mode {other} (use off|recoverable|lossy|outage|geo-outage)"
        )),
    }
}

/// Maps `--wire` to the frame layout the stream source requests plus
/// the borrowed-decode flag (zero-copy v2 views).
fn wire_setup(opts: &Options) -> Result<(donorpulse_twitter::WireMode, bool), String> {
    use donorpulse_twitter::WireMode;
    match opts.wire.as_str() {
        "v1" => Ok((WireMode::V1, false)),
        "v2" => Ok((WireMode::v2(), false)),
        "v2-borrowed" => Ok((WireMode::v2(), true)),
        other => Err(format!(
            "unknown --wire mode {other} (use v1|v2|v2-borrowed)"
        )),
    }
}

/// Maps `--campaigns` to the compiled campaign registry: the built-in
/// organ-donation campaign alone when absent, the manifest's set when
/// given (primary = first manifest entry).
fn campaign_setup(
    opts: &Options,
) -> Result<std::sync::Arc<donorpulse_core::campaign::CampaignSet>, String> {
    use donorpulse_core::campaign::CampaignSet;
    let set = match &opts.campaigns {
        Some(path) => CampaignSet::load(path).map_err(|e| e.to_string())?,
        None => CampaignSet::default_single(),
    };
    if set.len() > 1 {
        let names: Vec<&str> = set.names();
        eprintln!("# campaigns: {} ({})", set.len(), names.join(", "));
    }
    Ok(std::sync::Arc::new(set))
}

/// Stderr fault accounting, shared by the sharded and unsharded paths.
fn report_fault_accounting(
    stats: &donorpulse_twitter::fault::FaultStats,
    source_aborted: bool,
    parked_at_end: u64,
) {
    eprintln!(
        "# stream faults: {} disconnects, {} reconnects ({} failed attempts), {} replayed, {} skipped, {} duplicated, {} reordered, {} corrupted",
        stats.disconnects,
        stats.reconnects,
        stats.reconnect_failures,
        stats.replayed,
        stats.skipped,
        stats.duplicates_injected,
        stats.reordered,
        stats.corrupted
    );
    if source_aborted {
        eprintln!("# stream: source ABORTED (reconnect budget exhausted)");
    }
    if parked_at_end > 0 {
        eprintln!(
            "# stream: {parked_at_end} tweets still parked at end (geocoding never recovered)"
        );
    }
}

/// Writes the run's dead-letter log when `--dead-letter-dir` is given
/// (always, so an empty log is distinguishable from a missing run).
fn write_dead_letters(
    opts: &Options,
    letters: &donorpulse_core::checkpoint::DeadLetterLog,
) -> Result<(), String> {
    let Some(dir) = &opts.dead_letter_dir else {
        return Ok(());
    };
    std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    let path = format!("{dir}/dead-letters.dpwf");
    letters
        .write_to(&path)
        .map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("# wrote {} dead letters to {path}", letters.len());
    Ok(())
}

/// The four artifact fingerprints of one sensor's state —
/// `[corpus, attention, risk, daily]` — exactly the values the
/// `STREAM SENSOR SNAPSHOT` block prints. Shared with the per-campaign
/// `CAMPAIGN` lines so a campaign's fingerprints are comparable across
/// runs the same way the primary's are.
fn artifact_fingerprints(
    sensor: &donorpulse_core::incremental::IncrementalSensor<'_>,
) -> Result<[u64; 4], String> {
    let corpus = sensor.corpus();
    let attention = sensor.attention().map_err(|e| e.to_string())?;
    let risk = sensor.risk_map(0.05).map_err(|e| e.to_string())?;
    let daily = sensor.daily_series();

    let mut f = Fnv::new();
    for t in corpus.tweets() {
        f.u64(t.id.0);
        f.u64(t.user.0);
        f.u64(t.created_at.0);
        f.write(t.text.as_bytes());
        match t.geo {
            Some((lat, lon)) => {
                f.u64(1);
                f.u64(lat.to_bits());
                f.u64(lon.to_bits());
            }
            None => f.u64(0),
        }
    }
    let corpus_fp = f.0;
    let mut f = Fnv::new();
    for &u in attention.users() {
        f.u64(u.0);
        for &v in attention.attention_of(u).expect("user row") {
            f.u64(v.to_bits());
        }
    }
    let attention_fp = f.0;
    let mut f = Fnv::new();
    for e in &risk.entries {
        f.write(e.state.abbr().as_bytes());
        f.write(e.organ.name().as_bytes());
        f.u64(e.cases_in);
        f.u64(e.total_in);
        match &e.risk {
            Some(r) => {
                f.u64(1);
                f.u64(r.rr.to_bits());
            }
            None => f.u64(0),
        }
    }
    let risk_fp = f.0;
    let mut f = Fnv::new();
    for day in 0..daily.days() {
        f.u64(daily.total(day));
    }
    let daily_fp = f.0;
    Ok([corpus_fp, attention_fp, risk_fp, daily_fp])
}

/// One `CAMPAIGN <name> ...` stdout line per campaign for
/// multi-campaign runs: the per-tenant artifact fingerprints at the
/// same cut. Single-campaign runs print nothing here, so their stdout
/// keeps the pre-campaign format — and a multi-campaign run's stdout
/// minus its `CAMPAIGN ` lines is required to be byte-identical to the
/// single-campaign run's (`scripts/verify.sh` diffs exactly that).
fn print_campaign_lines(
    campaigns: &donorpulse_core::campaign::CampaignSet,
    primary: &donorpulse_core::incremental::IncrementalSensor<'_>,
    extras: &[donorpulse_core::incremental::IncrementalSensor<'_>],
) -> Result<(), String> {
    if campaigns.len() < 2 {
        return Ok(());
    }
    let sensors = std::iter::once(primary).chain(extras.iter());
    for (campaign, sensor) in campaigns.campaigns().iter().zip(sensors) {
        let [corpus_fp, attention_fp, risk_fp, daily_fp] = artifact_fingerprints(sensor)?;
        println!(
            "CAMPAIGN {} tweets={} usa={} users={} corpus={corpus_fp:016x} attention={attention_fp:016x} risk={risk_fp:016x} daily={daily_fp:016x}",
            campaign.name(),
            sensor.tweets_seen(),
            sensor.usa_tweet_count(),
            sensor.located_users(),
        );
    }
    Ok(())
}

/// Fingerprints the sensor's artifacts, prints the snapshot block,
/// verifies against the clean batch pipeline in-process, and enforces
/// the byte-identity gates for recoverable modes. Shared by the
/// sharded and unsharded stream paths — which is what makes "sharded
/// stdout equals unsharded stdout" a meaningful diff. Returns whether
/// every artifact matched the batch pipeline (the replay command gates
/// on it even in modes where a mismatch is not an error here).
#[allow(clippy::too_many_arguments)]
fn snapshot_and_check(
    opts: &Options,
    sim: &TwitterSimulation,
    sensor: &donorpulse_core::incremental::IncrementalSensor<'_>,
    delivered_tweets: u64,
    expected_tweets: u64,
    metrics: &donorpulse_core::pipeline::RunMetrics,
    parked_at_end: u64,
    source_aborted: bool,
) -> Result<bool, String> {
    sensor.ensure_nonempty().map_err(|e| e.to_string())?;
    let corpus = sensor.corpus();
    let attention = sensor.attention().map_err(|e| e.to_string())?;
    let risk = sensor.risk_map(0.05).map_err(|e| e.to_string())?;
    let [corpus_fp, attention_fp, risk_fp, daily_fp] = artifact_fingerprints(sensor)?;

    // In-process equivalence check against the clean batch pipeline
    // over the *same* simulation.
    let batch_config = donorpulse_core::pipeline::PipelineConfig {
        generator: sim.config().clone(),
        run_user_clustering: false,
        ..Default::default()
    };
    let batch = Pipeline::new()
        .run_on(sim, batch_config)
        .map_err(|e| e.to_string())?;
    let corpus_ok = corpus.tweets() == batch.usa.tweets();
    let states_ok = sensor.user_states() == batch.user_states;
    let attention_ok = attention == batch.attention;
    let risk_ok = risk.entries.len() == batch.risk.entries.len()
        && risk.entries.iter().zip(&batch.risk.entries).all(|(a, b)| {
            (a.state, a.organ, a.cases_in, a.total_in) == (b.state, b.organ, b.cases_in, b.total_in)
                && a.risk.map(|r| r.rr.to_bits()) == b.risk.map(|r| r.rr.to_bits())
        });
    let verdict = |ok: bool| if ok { "yes" } else { "NO" };

    let gap = metrics.counter("stream_gap_tweets_total").unwrap_or(0);
    println!("STREAM SENSOR SNAPSHOT");
    println!("  collected tweets        {}", sensor.tweets_seen());
    println!("  usa tweets              {}", sensor.usa_tweet_count());
    println!("  located users           {}", sensor.located_users());
    println!("  corpus fingerprint      {corpus_fp:016x}");
    println!("  attention fingerprint   {attention_fp:016x}");
    println!("  risk fingerprint        {risk_fp:016x}");
    println!("  daily fingerprint       {daily_fp:016x}");
    println!(
        "  coverage                {} / {} delivered, gap counter {}",
        delivered_tweets, expected_tweets, gap
    );
    println!(
        "  batch equivalence       corpus={} states={} attention={} risk={}",
        verdict(corpus_ok),
        verdict(states_ok),
        verdict(attention_ok),
        verdict(risk_ok)
    );
    if opts.metrics {
        eprintln!("{}", metrics.render_table());
    }
    if let Some(path) = &opts.json {
        // Hand-rolled JSON so the summary also works where serde_json
        // is stubbed out (see .claude/skills/verify/SKILL.md).
        let body = format!(
            "{{\n  \"faults\": \"{}\",\n  \"scale\": {},\n  \"seed\": {},\n  \"delivered\": {},\n  \"expected\": {},\n  \"gap\": {},\n  \"parked_at_end\": {},\n  \"source_aborted\": {},\n  \"corpus_fp\": \"{:016x}\",\n  \"attention_fp\": \"{:016x}\",\n  \"risk_fp\": \"{:016x}\",\n  \"daily_fp\": \"{:016x}\",\n  \"matches_batch\": {}\n}}\n",
            opts.faults,
            opts.scale,
            opts.seed,
            delivered_tweets,
            expected_tweets,
            gap,
            parked_at_end,
            source_aborted,
            corpus_fp,
            attention_fp,
            risk_fp,
            daily_fp,
            corpus_ok && states_ok && attention_ok && risk_ok
        );
        std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("# wrote {path}");
    }
    // Recoverable schedules promise byte-identity; hold them to it so
    // `repro stream` is a real gate, not a report.
    let must_match = matches!(opts.faults.as_str(), "off" | "recoverable");
    if must_match && !(corpus_ok && states_ok && attention_ok && risk_ok) {
        return Err(format!(
            "faults={} must reproduce the batch artifacts exactly, but equivalence failed",
            opts.faults
        ));
    }
    if must_match && gap != 0 {
        return Err(format!(
            "faults={} must have zero coverage gap, found {gap}",
            opts.faults
        ));
    }
    Ok(corpus_ok && states_ok && attention_ok && risk_ok)
}

/// Ablation: Bhattacharyya (the paper's affinity) vs Euclidean and
/// cosine for the Fig. 6 state clustering. Reports the agreement (ARI of
/// the k = 4 flat cuts) and each metric's leaf order.
fn ablation_metric(run: &PipelineRun) -> Result<(), String> {
    println!("ABLATION: state-clustering affinity (paper uses Bhattacharyya)");
    let base = &run.state_clusters;
    let base_labels = base.dendrogram.cut(4).map_err(|e| e.to_string())?;
    for metric in [Metric::Euclidean, Metric::Cosine, Metric::Hellinger] {
        let alt = StateClustering::compute_with(&run.region_k, metric, Linkage::Average)
            .map_err(|e| e.to_string())?;
        let alt_labels = alt.dendrogram.cut(4).map_err(|e| e.to_string())?;
        let ari = adjusted_rand_index(&base_labels, &alt_labels).map_err(|e| e.to_string())?;
        println!(
            "bhattacharyya vs {:<14} ARI(k=4) = {:+.3}",
            metric.name(),
            ari
        );
    }
    let order: Vec<&str> = base.leaf_order.iter().map(|s| s.abbr()).collect();
    println!("bhattacharyya leaf order: {}", order.join(" "));
    Ok(())
}

/// Ablation: the naive winner-takes-all per state vs the paper's
/// relative-risk rule (Sec. IV-B.1's motivating argument).
fn ablation_highlight(run: &PipelineRun) -> Result<(), String> {
    println!("ABLATION: winner-takes-all vs relative-risk highlighting");
    let mut wta = std::collections::HashMap::new();
    for s in &run.regions.signatures {
        *wta.entry(s.ranked[0].0).or_insert(0usize) += 1;
    }
    println!(
        "winner-takes-all top organ counts over {} states:",
        run.regions.signatures.len()
    );
    for organ in Organ::ALL {
        println!(
            "  {:<10} {:>3}",
            organ.name(),
            wta.get(&organ).copied().unwrap_or(0)
        );
    }
    let highlighted = run.risk.highlighted();
    println!(
        "relative-risk highlights {} states with a significant organ:",
        highlighted.len()
    );
    let mut pairs: Vec<_> = highlighted.into_iter().collect();
    pairs.sort_by_key(|&(s, _)| s);
    for (state, organs) in pairs {
        let names: Vec<&str> = organs.iter().map(|o| o.name()).collect();
        println!("  {:<22} {}", state.name(), names.join(", "));
    }
    println!(
        "(WTA paints nearly every state '{}'; RR recovers the planted anomalies)",
        Organ::Heart.name()
    );
    Ok(())
}

/// Ablation: user-level vs tweet-level unit of analysis (the paper's
/// Sec. III-B argument: tweet-level counting is dominated by heavy
/// posters).
fn ablation_unit(opts: &Options) -> Result<(), String> {
    let config = donorpulse_bench::config_at_scale(opts.scale, opts.seed);
    let sim = TwitterSimulation::generate(config.generator.clone()).map_err(|e| e.to_string())?;
    let collected: Corpus = sim
        .stream()
        .with_filter(Box::new(KeywordQuery::paper()))
        .collect();

    // Tweet-level organ shares vs user-level organ shares.
    let mut tweet_counts = [0u64; Organ::COUNT];
    for t in collected.tweets() {
        let mc = extract_mentions(&t.text);
        for o in Organ::ALL {
            tweet_counts[o.index()] += mc.count(o) as u64;
        }
    }
    let per_user = collected.mentions_by_user();
    let mut user_counts = [0u64; Organ::COUNT];
    for mc in per_user.values() {
        for o in Organ::ALL {
            if mc.count(o) > 0 {
                user_counts[o.index()] += 1;
            }
        }
    }
    // Contribution of the top 1% heaviest posters to the tweet-level view.
    let mut totals: Vec<u32> = per_user.values().map(|m| m.total()).collect();
    totals.sort_unstable_by(|a, b| b.cmp(a));
    let top1 = totals.len().div_ceil(100);
    let heavy: u64 = totals.iter().take(top1).map(|&t| t as u64).sum();
    let all: u64 = totals.iter().map(|&t| t as u64).sum();

    println!("ABLATION: unit of analysis (tweet-level vs user-level)");
    let tsum: u64 = tweet_counts.iter().sum();
    let usum: u64 = user_counts.iter().sum();
    println!("{:<10} {:>14} {:>14}", "organ", "tweet share", "user share");
    for o in Organ::ALL {
        println!(
            "{:<10} {:>13.1}% {:>13.1}%",
            o.name(),
            100.0 * tweet_counts[o.index()] as f64 / tsum as f64,
            100.0 * user_counts[o.index()] as f64 / usum as f64,
        );
    }
    println!(
        "top 1% heaviest posters ({} users) produce {:.1}% of all organ mentions —\n\
         the bias the paper's user-level Û is designed to resist",
        top1,
        100.0 * heavy as f64 / all as f64
    );
    Ok(())
}

/// Ablation: locating users from GPS alone (~1.4% of tweets) vs the
/// paper's profile augmentation (Sec. III-A).
fn ablation_geo(opts: &Options) -> Result<(), String> {
    let config = donorpulse_bench::config_at_scale(opts.scale, opts.seed);
    let sim = TwitterSimulation::generate(config.generator.clone()).map_err(|e| e.to_string())?;
    let collected: Corpus = sim
        .stream()
        .with_filter(Box::new(KeywordQuery::paper()))
        .collect();
    let geocoder = Geocoder::new();

    let mut users: std::collections::HashSet<_> = std::collections::HashSet::new();
    let mut gps_located = std::collections::HashSet::new();
    let mut profile_located = std::collections::HashSet::new();
    let mut either = std::collections::HashSet::new();
    for t in collected.tweets() {
        users.insert(t.user);
        if let Some((lat, lon)) = t.geo {
            if geocoder.resolve_point(lat, lon).is_some() {
                gps_located.insert(t.user);
                either.insert(t.user);
            }
        }
    }
    for &u in &users {
        let profile = &sim.users()[u.0 as usize].profile_location;
        if let donorpulse_geo::ParseOutcome::Resolved { .. } = geocoder.resolve_profile(profile) {
            profile_located.insert(u);
            either.insert(u);
        }
    }
    println!(
        "ABLATION: geolocation source coverage over {} collecting users",
        users.len()
    );
    let pct = |n: usize| 100.0 * n as f64 / users.len() as f64;
    println!(
        "GPS geo-tags only:      {:>7} users ({:>5.1}%)",
        gps_located.len(),
        pct(gps_located.len())
    );
    println!(
        "profile strings only:   {:>7} users ({:>5.1}%)",
        profile_located.len(),
        pct(profile_located.len())
    );
    println!(
        "augmented (either):     {:>7} users ({:>5.1}%)",
        either.len(),
        pct(either.len())
    );
    println!("(the paper's point: GPS alone covers ~1–3%; profile augmentation is what makes state-level sensing possible)");
    Ok(())
}

/// Extension experiment (the paper's conclusion): plant a two-week viral
/// awareness event and verify the real-time burst detector recovers its
/// organ and window from the collected stream.
fn extension_burst(opts: &Options) -> Result<(), String> {
    use donorpulse_core::temporal::{detect_bursts, BurstConfig, DailySeries};
    use donorpulse_twitter::AwarenessEvent;

    let event = AwarenessEvent {
        organ: Organ::Lung,
        start_day: 120,
        end_day: 134,
        intensity: 0.35,
    };
    let mut config = donorpulse_bench::config_at_scale(opts.scale, opts.seed);
    config.generator.events.push(event);
    let sim = TwitterSimulation::generate(config.generator.clone()).map_err(|e| e.to_string())?;
    let corpus: Corpus = sim
        .stream()
        .with_filter(Box::new(KeywordQuery::paper()))
        .collect();
    let series = DailySeries::from_corpus(&corpus);
    let bursts = detect_bursts(&series, BurstConfig::default()).map_err(|e| e.to_string())?;

    println!("EXTENSION: real-time awareness sensing");
    println!(
        "planted: {} days {}..{} intensity {}",
        event.organ, event.start_day, event.end_day, event.intensity
    );
    println!("detected bursts:");
    for b in &bursts {
        println!(
            "  {:<9} days {:>3}..{:<3} peak z {:.1} (share {:.1}% vs baseline {:.1}%)",
            b.organ.name(),
            b.start_day,
            b.end_day,
            b.peak_z,
            b.peak_share * 100.0,
            b.baseline_share * 100.0
        );
    }
    let hit = bursts.iter().any(|b| {
        b.organ == event.organ
            && b.start_day < event.end_day as usize
            && b.end_day > event.start_day as usize
    });
    println!(
        "planted event {}",
        if hit { "RECOVERED" } else { "NOT recovered" }
    );
    Ok(())
}

/// Falsification control: re-run Fig 5's machinery with every planted
/// anomaly removed. A trustworthy sensor reports (near) nothing.
fn control_null(opts: &Options) -> Result<(), String> {
    let mut config = donorpulse_bench::config_at_scale(opts.scale, opts.seed);
    config.generator.state_organ_boost.clear();
    config.run_user_clustering = false;
    let run = Pipeline::new().run(config).map_err(|e| e.to_string())?;

    println!("CONTROL: no planted anomalies (null geography)");
    let chi = run
        .risk
        .global_independence_test()
        .map_err(|e| e.to_string())?;
    println!(
        "global chi-square: statistic {:.1}, df {}, p = {:.3} -> {}",
        chi.statistic,
        chi.df,
        chi.p_value,
        if chi.significant_at(0.05) {
            "DEPENDENT (unexpected!)"
        } else {
            "independent, as it should be"
        }
    );
    let highlighted: usize = run.risk.highlighted().values().map(Vec::len).sum();
    println!(
        "uncorrected per-cell highlights: {highlighted} (multiple-testing noise; ~8 expected at alpha = .05)"
    );
    let adjusted = donorpulse_core::relative_risk::permutation::adjust(
        &run.attention,
        &run.user_states,
        0.05,
        60,
        opts.seed,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "after permutation FWER correction: {} surviving (should be ~0)",
        adjusted.surviving.len()
    );
    Ok(())
}
