//! Integration tests for the simulated Stream API: filter semantics,
//! accounting, determinism, and equivalence of the two `Q` filter
//! implementations.

use donorpulse::prelude::*;

fn sim(seed: u64) -> TwitterSimulation {
    let mut config = GeneratorConfig::paper_scaled(0.004);
    config.seed = seed;
    TwitterSimulation::generate(config).expect("sim")
}

#[test]
fn cartesian_track_equals_keyword_query_on_the_stream() {
    // The paper describes Q as a Cartesian-product track list; we filter
    // with the equivalent two-automaton conjunction. They must accept
    // exactly the same tweets.
    let s = sim(1);
    let via_track: Vec<_> = s
        .stream()
        .with_track(TrackFilter::paper_cartesian())
        .map(|t| t.id)
        .collect();
    let via_query: Vec<_> = s
        .stream()
        .with_filter(Box::new(KeywordQuery::paper()))
        .map(|t| t.id)
        .collect();
    assert_eq!(via_track, via_query);
    assert!(!via_track.is_empty());
}

#[test]
fn every_collected_tweet_satisfies_q() {
    let s = sim(2);
    let q = KeywordQuery::paper();
    for tweet in s.stream().with_filter(Box::new(KeywordQuery::paper())) {
        assert!(q.matches(&tweet.text), "filter leaked: {}", tweet.text);
        // And carries at least one extractable organ mention.
        let mc = donorpulse::text::extract_mentions(&tweet.text);
        assert!(!mc.is_empty(), "no organ in: {}", tweet.text);
    }
}

#[test]
fn stream_accounting_is_exact() {
    let s = sim(3);
    let mut conn = s.stream().with_track(TrackFilter::paper_cartesian());
    let delivered = conn.by_ref().count() as u64;
    let stats = conn.stats();
    assert_eq!(stats.delivered, delivered);
    assert_eq!(
        stats.delivered + stats.filtered_out + stats.sampled_out,
        s.firehose_len() as u64
    );
}

#[test]
fn collection_rate_matches_calibration() {
    // Chatter ratio 4.0 -> roughly 1 in 5 firehose tweets is on-topic.
    let s = sim(4);
    let collected = s
        .stream()
        .with_filter(Box::new(KeywordQuery::paper()))
        .count();
    let rate = collected as f64 / s.firehose_len() as f64;
    assert!((rate - 0.2).abs() < 0.04, "collection rate {rate}");
}

#[test]
fn corpus_from_stream_preserves_order_and_count() {
    let s = sim(5);
    let corpus: Corpus = s
        .stream()
        .with_filter(Box::new(KeywordQuery::paper()))
        .collect();
    assert_eq!(corpus.len(), s.on_topic_len());
    let tweets = corpus.tweets();
    for pair in tweets.windows(2) {
        assert!(pair[0].created_at <= pair[1].created_at);
    }
}

#[test]
fn same_seed_same_stream_different_seed_different_stream() {
    let a: Vec<String> = sim(7).stream().take(200).map(|t| t.text).collect();
    let b: Vec<String> = sim(7).stream().take(200).map(|t| t.text).collect();
    let c: Vec<String> = sim(8).stream().take(200).map(|t| t.text).collect();
    assert_eq!(a, b);
    assert_ne!(a, c);
}

#[test]
fn sampled_stream_is_a_subset() {
    let s = sim(9);
    let full: std::collections::HashSet<_> = s
        .stream()
        .with_track(TrackFilter::paper_cartesian())
        .map(|t| t.id)
        .collect();
    let sampled: Vec<_> = s
        .stream()
        .with_track(TrackFilter::paper_cartesian())
        .with_sample_rate(0.3)
        .map(|t| t.id)
        .collect();
    assert!(sampled.len() < full.len());
    assert!(sampled.iter().all(|id| full.contains(id)));
}
