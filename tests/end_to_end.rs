//! End-to-end integration tests: the full pipeline must recover what the
//! generative model planted — a verification the original study (built
//! on an unlabeled proprietary crawl) could never perform.

use donorpulse::cluster::validation::purity;
use donorpulse::core::pipeline::{Pipeline, PipelineConfig, PipelineRun};
use donorpulse::core::report::{Fig2a, Fig2b, Fig5, PaperReport};
use donorpulse::prelude::*;
use donorpulse::twitter::Archetype;
use std::sync::OnceLock;

/// One shared 25%-scale run (the statistical assertions need thousands
/// of located users, like the paper's 71,947).
fn run() -> &'static PipelineRun {
    static RUN: OnceLock<PipelineRun> = OnceLock::new();
    RUN.get_or_init(|| {
        let mut config = PipelineConfig::paper_scaled(0.25);
        config.generator.seed = 0xE2E;
        config.user_clustering.k_max = 14;
        config.user_clustering.silhouette_sample = 800;
        Pipeline::new().run(config).expect("pipeline")
    })
}

/// The simulation behind the shared run, regenerated for ground truth.
fn sim() -> &'static TwitterSimulation {
    static SIM: OnceLock<TwitterSimulation> = OnceLock::new();
    SIM.get_or_init(|| {
        let mut config = GeneratorConfig::paper_scaled(0.25);
        config.seed = 0xE2E;
        TwitterSimulation::generate(config).expect("sim")
    })
}

#[test]
fn table1_shape_matches_paper() {
    let r = run();
    let stats = r.usa.stats();
    // Collection window (Table I).
    assert_eq!(stats.start.as_deref(), Some("Apr 22 2015"));
    assert_eq!(stats.finish.as_deref(), Some("May 10 2016"));
    assert_eq!(stats.days, 385);
    // Tweets per user 1.88 in the paper.
    assert!(
        (stats.avg_tweets_per_user - 1.88).abs() < 0.15,
        "tweets/user {}",
        stats.avg_tweets_per_user
    );
    // Organs per tweet 1.03, per user 1.13.
    assert!(
        (stats.organs_per_tweet - 1.03).abs() < 0.03,
        "organs/tweet {}",
        stats.organs_per_tweet
    );
    assert!(
        (stats.organs_per_user - 1.13).abs() < 0.08,
        "organs/user {}",
        stats.organs_per_user
    );
    // USA share of collected tweets: 134,986 / 975,021 = 13.8%.
    assert!(
        (r.usa_fraction() - 0.138).abs() < 0.03,
        "usa fraction {}",
        r.usa_fraction()
    );
}

#[test]
fn fig2a_popularity_and_spearman() {
    let f = Fig2a::from_run(run()).unwrap();
    // Popularity order heart > kidney > liver > lung > pancreas > intestine.
    let counts: Vec<u64> = f.users_per_organ.iter().map(|&(_, c)| c).collect();
    for pair in counts.windows(2) {
        assert!(pair[0] > pair[1], "popularity order violated: {counts:?}");
    }
    // The paper's r = .84: the planted rank pattern (heart 1st on
    // Twitter, 3rd in transplants, all else aligned) gives exactly
    // 1 − 6·6/(6·35) = 29/35 when the orders hold.
    assert!(
        (f.spearman.r - 29.0 / 35.0).abs() < 1e-9,
        "spearman r = {}",
        f.spearman.r
    );
    assert!(f.spearman.significant_at(0.05));
}

#[test]
fn fig2b_crossover_at_single_mentions() {
    let f = Fig2b::from_run(run());
    // Paper: "The number of tweets is greater than the number of users
    // only for single mentions."
    assert!(f.tweets[0] > f.users[0]);
    for k in 1..6 {
        assert!(
            f.users[k] >= f.tweets[k],
            "k = {}: users {} < tweets {}",
            k + 1,
            f.users[k],
            f.tweets[k]
        );
    }
}

#[test]
fn fig3_coattention_structure_recovered() {
    let r = run();
    // Paper: kidney is the most important co-organ for heart, liver and
    // pancreas users; heart for kidney, lung and intestine users.
    let second = |organ: Organ| -> Organ {
        let i = r.organ_k.groups.iter().position(|&o| o == organ).unwrap();
        r.organ_k.ranked_row(i)[1].0
    };
    assert_eq!(second(Organ::Heart), Organ::Kidney);
    assert_eq!(second(Organ::Liver), Organ::Kidney);
    assert_eq!(second(Organ::Pancreas), Organ::Kidney);
    assert_eq!(second(Organ::Kidney), Organ::Heart);
    assert_eq!(second(Organ::Lung), Organ::Heart);
    assert_eq!(second(Organ::Intestine), Organ::Heart);
}

#[test]
fn fig3_coattention_is_not_reciprocal() {
    let r = run();
    // Heart users' attention to kidney differs from kidney users'
    // attention to heart (the paper stresses non-reciprocity).
    let heart_row = r.organ_k.row_for(Organ::Heart).unwrap();
    let kidney_row = r.organ_k.row_for(Organ::Kidney).unwrap();
    let h_to_k = heart_row[Organ::Kidney.index()];
    let k_to_h = kidney_row[Organ::Heart.index()];
    assert!(
        (h_to_k - k_to_h).abs() > 0.005,
        "reciprocal: {h_to_k} vs {k_to_h}"
    );
}

#[test]
fn fig5_planted_anomalies_recovered() {
    let f = Fig5::from_run(run());
    let has = |state: UsState, organ: Organ| {
        f.highlighted
            .iter()
            .any(|(s, orgs)| *s == state && orgs.contains(&organ))
    };
    // The paper's headline findings, planted in the generator:
    assert!(has(UsState::Kansas, Organ::Kidney), "{:?}", f.highlighted);
    assert!(
        has(UsState::Louisiana, Organ::Kidney),
        "{:?}",
        f.highlighted
    );
    assert!(
        has(UsState::Massachusetts, Organ::Lung),
        "{:?}",
        f.highlighted
    );
}

#[test]
fn fig5_kansas_is_the_only_midwestern_kidney_anomaly() {
    // The paper: "Kansas is also the only state in the Midwestern USA
    // for which conversations of kidney is highly exceeding the national
    // expectation."
    let f = Fig5::from_run(run());
    let midwestern_kidney: Vec<UsState> = f
        .highlighted
        .iter()
        .filter(|(s, orgs)| {
            s.region() == donorpulse::geo::Region::Midwest && orgs.contains(&Organ::Kidney)
        })
        .map(|&(s, _)| s)
        .collect();
    assert_eq!(midwestern_kidney, vec![UsState::Kansas]);
}

#[test]
fn fig5_global_independence_rejected() {
    // Before reading per-cell highlights: the state x organ table must
    // deviate from independence globally (the planted anomalies
    // guarantee it at this scale).
    let chi = run().risk.global_independence_test().unwrap();
    assert!(chi.significant_at(0.001), "p = {}", chi.p_value);
    assert!(chi.n > 10_000);
}

#[test]
fn fig6_planted_zones_cluster_together() {
    let r = run();
    // States planted with the same organ anomaly should be closer to
    // each other than to states planted with a different organ.
    let d = |a: UsState, b: UsState| r.state_clusters.distance_between(a, b).unwrap();
    // Kidney pair vs kidney–liver cross pair.
    assert!(
        d(UsState::Kansas, UsState::Louisiana) < d(UsState::Kansas, UsState::Delaware),
        "KS-LA {} !< KS-DE {}",
        d(UsState::Kansas, UsState::Louisiana),
        d(UsState::Kansas, UsState::Delaware)
    );
    // Liver pair vs liver–lung cross pair.
    assert!(
        d(UsState::Delaware, UsState::Colorado) < d(UsState::Delaware, UsState::Oregon),
        "DE-CO {} !< DE-OR {}",
        d(UsState::Delaware, UsState::Colorado),
        d(UsState::Delaware, UsState::Oregon)
    );
}

#[test]
fn fig7_clusters_align_with_planted_archetypes() {
    let r = run();
    let uc = r.user_clusters.as_ref().expect("clustering enabled");
    assert!(uc.chosen_k >= 6, "k = {}", uc.chosen_k);
    // Silhouette is high (paper reports 0.953): attention vectors are
    // near-one-hot so clusters are compact.
    let chosen = uc.sweep.iter().find(|c| c.k == uc.chosen_k).unwrap();
    assert!(chosen.silhouette > 0.55, "silhouette {}", chosen.silhouette);

    // Cluster labels vs planted ground truth (single-focus organ or
    // "other"): purity should beat chance by a wide margin.
    let s = sim();
    let truth: Vec<usize> = r
        .attention
        .users()
        .iter()
        .map(|id| match s.users()[id.0 as usize].archetype {
            Archetype::SingleFocus(o) => o.index(),
            Archetype::DualFocus(..) => 6,
            Archetype::Generalist => 7,
        })
        .collect();
    let p = purity(&uc.model.labels, &truth).unwrap();
    assert!(p > 0.6, "purity {p}");
}

#[test]
fn dominant_organ_recovery_per_user() {
    // The argmax of each user's measured attention row should match the
    // planted dominant organ for single-focus users in the vast
    // majority of cases (they tweet mostly about it).
    let r = run();
    let s = sim();
    let mut total = 0u64;
    let mut agree = 0u64;
    let dominants = r.attention.dominant_organs();
    for (i, id) in r.attention.users().iter().enumerate() {
        if let Archetype::SingleFocus(planted) = s.users()[id.0 as usize].archetype {
            total += 1;
            if dominants[i] == planted {
                agree += 1;
            }
        }
    }
    assert!(total > 1_000, "too few single-focus users: {total}");
    assert!(
        agree * 100 >= total * 85,
        "only {agree}/{total} dominant organs recovered"
    );
}

#[test]
fn geolocation_recovers_home_states() {
    // Among users the pipeline located, the resolved state should match
    // the planted home state almost always (errors come from ambiguous
    // city homonyms — e.g. "Columbus" — by design).
    let r = run();
    let s = sim();
    let mut total = 0u64;
    let mut agree = 0u64;
    for (id, &resolved) in &r.user_states {
        if let Some(home) = s.users()[id.0 as usize].home_state() {
            total += 1;
            if resolved == home {
                agree += 1;
            }
        }
    }
    assert!(total > 5_000);
    assert!(
        agree * 100 >= total * 92,
        "only {agree}/{total} home states recovered"
    );
}

#[test]
fn full_report_renders_and_serializes() {
    let report = PaperReport::from_run(run()).unwrap();
    let text = report.render();
    for needle in [
        "TABLE I", "FIG 2(a)", "FIG 2(b)", "FIG 3", "FIG 4", "FIG 5", "FIG 6", "FIG 7",
    ] {
        assert!(text.contains(needle), "missing {needle}");
    }
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.len() > 10_000);
}
