//! Failure-injection and degenerate-input integration tests: the
//! pipeline must fail loudly (typed errors), never panic, on corpora the
//! paper's happy path never sees.

use donorpulse::core::membership::{by_dominant_organ, by_region};
use donorpulse::core::relative_risk::RiskMap;
use donorpulse::core::user_clusters::{UserClustering, UserClusteringConfig};
use donorpulse::core::{AttentionMatrix, CoreError};
use donorpulse::prelude::*;
use donorpulse::text::extract::MentionCounts;
use donorpulse::twitter::{SimInstant, Tweet, TweetId, UserId};
use std::collections::HashMap;

fn tweet(id: u64, user: u64, text: &str) -> Tweet {
    Tweet {
        id: TweetId(id),
        user: UserId(user),
        created_at: SimInstant(id),
        text: text.to_string(),
        geo: None,
    }
}

#[test]
fn empty_corpus_yields_typed_error() {
    let corpus = Corpus::new();
    assert!(matches!(
        AttentionMatrix::from_corpus(&corpus),
        Err(CoreError::EmptyCorpus { .. })
    ));
}

#[test]
fn corpus_without_organ_mentions_yields_typed_error() {
    // Tweets that somehow passed collection but mention no organ.
    let corpus = Corpus::from_tweets([tweet(0, 1, "nothing relevant here")]);
    assert!(matches!(
        AttentionMatrix::from_corpus(&corpus),
        Err(CoreError::EmptyCorpus { .. })
    ));
}

#[test]
fn single_user_corpus_characterizes() {
    let corpus = Corpus::from_tweets([
        tweet(0, 1, "kidney donor registered"),
        tweet(1, 1, "kidney transplant tomorrow"),
    ]);
    let attention = AttentionMatrix::from_corpus(&corpus).unwrap();
    assert_eq!(attention.user_count(), 1);
    let membership = by_dominant_organ(&attention).unwrap();
    let k =
        donorpulse::core::aggregate::Aggregation::compute(&membership, attention.matrix()).unwrap();
    assert_eq!(k.groups, vec![Organ::Kidney]);
    assert_eq!(
        k.row_for(Organ::Kidney).unwrap()[Organ::Kidney.index()],
        1.0
    );
}

#[test]
fn region_membership_with_no_locations_errors() {
    let corpus = Corpus::from_tweets([tweet(0, 1, "heart donor")]);
    let attention = AttentionMatrix::from_corpus(&corpus).unwrap();
    let empty: HashMap<UserId, UsState> = HashMap::new();
    assert!(matches!(
        by_region(&attention, &empty),
        Err(CoreError::NoGroups { .. })
    ));
}

#[test]
fn risk_map_with_single_state_defines_nothing() {
    let corpus = Corpus::from_tweets([tweet(0, 1, "heart donor"), tweet(1, 2, "kidney donor")]);
    let attention = AttentionMatrix::from_corpus(&corpus).unwrap();
    let mut states = HashMap::new();
    states.insert(UserId(1), UsState::Kansas);
    states.insert(UserId(2), UsState::Kansas);
    let rm = RiskMap::compute(&attention, &states, 0.05).unwrap();
    // No outside population: every RR undefined, no highlight, no panic.
    assert!(rm.entries.iter().all(|e| e.risk.is_none()));
    assert!(rm.highlighted().is_empty());
}

#[test]
fn user_clustering_rejects_more_clusters_than_users() {
    let mut mentions = HashMap::new();
    for i in 0..5u64 {
        let mut mc = MentionCounts::new();
        mc.add(Organ::Heart, 1);
        mentions.insert(UserId(i), mc);
    }
    let attention = AttentionMatrix::from_mentions(&mentions).unwrap();
    let config = UserClusteringConfig {
        k_min: 6,
        k_max: 12,
        silhouette_sample: 100,
        seed: 1,
    };
    assert!(matches!(
        UserClustering::fit(&attention, config),
        Err(CoreError::InvalidParameter(_))
    ));
}

#[test]
fn pipeline_with_no_us_users_fails_loudly() {
    let mut config = PipelineConfig::paper_scaled(0.002);
    config.generator.us_user_fraction = 0.0; // nobody in the USA
    let result = Pipeline::new().run(config);
    assert!(matches!(result, Err(CoreError::EmptyCorpus { .. })));
}

#[test]
fn pipeline_with_all_us_users_works() {
    let mut config = PipelineConfig::paper_scaled(0.002);
    config.generator.us_user_fraction = 1.0;
    config.run_user_clustering = false;
    let run = Pipeline::new().run(config).unwrap();
    assert!(run.usa_fraction() > 0.5);
    assert!(run.non_us_users == 0 || run.non_us_users < run.user_states.len() as u64 / 10);
}

#[test]
fn pipeline_without_chatter_collects_everything() {
    let mut config = PipelineConfig::paper_scaled(0.002);
    config.generator.chatter_ratio = 0.0;
    config.run_user_clustering = false;
    let run = Pipeline::new().run(config).unwrap();
    assert_eq!(run.collected_tweets, run.firehose_tweets);
}

#[test]
fn extreme_activity_distribution_survives() {
    // Every user tweets exactly once (activity_max = 1).
    let mut config = PipelineConfig::paper_scaled(0.002);
    config.generator.activity_max = 1;
    config.run_user_clustering = false;
    let run = Pipeline::new().run(config).unwrap();
    let stats = run.usa.stats();
    assert!((stats.avg_tweets_per_user - 1.0).abs() < 1e-9);
}

#[test]
fn invalid_generator_config_is_reported() {
    let mut config = PipelineConfig::paper_scaled(0.002);
    config.generator.organ_popularity = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
    assert!(matches!(
        Pipeline::new().run(config),
        Err(CoreError::Simulation(_))
    ));
}
