//! Integration tests for elastic re-sharding (`core::reshard`).
//!
//! The headline invariant, the same currency the merge and resume
//! tests trade in: repartitioning a consistent checkpoint cut onto a
//! new shard count — offline with `repro reshard`, online with
//! `--reshard-at K:M` — must leave the finished run's artifacts
//! **byte-identical** to an uninterrupted run at the target count.
//!
//! Three layers:
//!
//! 1. **Deterministic identity drills** — grow (2→3) across a
//!    kill/reshard/resume cycle, shrink (4→2), and the in-process
//!    online topology swap, each diffed against the uninterrupted
//!    reference at the target count.
//! 2. **A seeded fuzz sweep** — random `(old N, new M, cut point,
//!    fault preset, wire mode, offline|online)` configurations, budget
//!    set by `RESHARD_FUZZ_BUDGET` (nightly runs an extended budget).
//!    Discovered boundaries, encoded below:
//!
//!    * a permanent geocoding outage is **not** raw-snapshot
//!      invariant across a re-shard — outage schedules are call-count
//!      keyed, and the post-swap (or post-resume) services start
//!      fresh counters, so *which* tweets are abandoned shifts. The
//!      sanctioned gate for that preset is dead-letter replay to full
//!      clean coverage, which is scheduling-independent.
//!    * replayed coverage is **content**-equal, not export-byte-equal:
//!      a track's tweet vector records arrival order, and a replayed
//!      tweet arrives after tweets that outrank it in stream order.
//!      The replay gate therefore compares the order-insensitive
//!      artifacts (counts, user states, corpus, attention bits) —
//!      the same equivalence `replay-dead-letters` certifies with
//!      "coverage restored yes".
//! 3. **Golden vectors** — a deterministic two-campaign 2→3 re-shard
//!    pinned byte-for-byte under `tests/data/reshard/`, on the same
//!    `REGEN_WIRE_FIXTURES=1` contract as the wire codecs.

use std::collections::BTreeMap;

use donorpulse::core::incremental::{IncrementalSensor, SensorExport, TrackExport};
use donorpulse::core::shard::{route_shard, run_sharded_stream, ShardConfig, ShardServices, MAX_SHARDS};
use donorpulse::core::stream_consumer::{replay_dead_letters, StreamPipelineConfig};
use donorpulse::core::{
    reshard_checkpoints, CampaignSection, CheckpointStore, MemCheckpointStore, SensorCheckpoint,
    DEFAULT_CAMPAIGN,
};
use donorpulse::geo::{FlakyConfig, FlakyGeocoder, Geocoder, LocationService};
use donorpulse::obs::MetricsRegistry;
use donorpulse::prelude::*;
use donorpulse::text::extract::MentionCounts;
use donorpulse::twitter::fault::FaultConfig;
use donorpulse::twitter::wire::WireMode;
use donorpulse::twitter::{SimInstant, Tweet, TweetId, UserId};

const SEED: u64 = 0x5AA4D;

fn sim(scale: f64) -> TwitterSimulation {
    let mut config = GeneratorConfig::paper_scaled(scale);
    config.seed = SEED;
    TwitterSimulation::generate(config).expect("sim")
}

fn shard_config(shards: usize) -> ShardConfig {
    ShardConfig {
        shards,
        stream: StreamPipelineConfig {
            metrics: MetricsRegistry::enabled(),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Bitwise snapshot equality between two sensors, plus the export
/// fingerprint — the exact value the serving layer uses as its ETag.
fn assert_sensors_equal(a: &IncrementalSensor<'_>, b: &IncrementalSensor<'_>, label: &str) {
    assert_eq!(a.tweets_seen(), b.tweets_seen(), "{label}: tweet count");
    assert_eq!(a.user_states(), b.user_states(), "{label}: user states");
    assert_eq!(a.corpus().tweets(), b.corpus().tweets(), "{label}: corpus");
    assert_eq!(
        a.export().fingerprint(),
        b.export().fingerprint(),
        "{label}: export fingerprint"
    );
}

// ---------------------------------------------------------------------
// Deterministic identity drills.
// ---------------------------------------------------------------------

/// Grow: kill a 2-shard run, `reshard_checkpoints` the store to 3,
/// resume at 3 — artifacts must match the uninterrupted 3-shard run.
#[test]
fn offline_reshard_then_resume_matches_uninterrupted_run_at_target() {
    let sim = sim(0.01);
    let geocoder = Geocoder::new();
    let faults = FaultConfig::recoverable(SEED);

    let mut target_config = shard_config(3);
    target_config.checkpoint_every = 200;
    let uninterrupted = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        faults.clone(),
        None,
        target_config.clone(),
    )
    .expect("uninterrupted run at target");
    let reference = uninterrupted.sensor.expect("reference sensor");

    let store = MemCheckpointStore::new();
    let mut killed_config = shard_config(2);
    killed_config.checkpoint_every = 200;
    killed_config.kill_after = Some(500);
    let killed = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        faults.clone(),
        Some(&store),
        killed_config,
    )
    .expect("killed run");
    assert!(killed.killed);
    assert!(killed.last_epoch >= 1, "crash happened before any epoch");

    let metrics = MetricsRegistry::enabled();
    let report = reshard_checkpoints(&store, 3, &metrics).expect("reshard");
    assert_eq!(report.from_shards, 2);
    assert_eq!(report.to_shards, 3);
    assert!(report.tracks_total > 0, "the cut held no user tracks");
    assert!(
        report.tracks_moved > 0,
        "a modulus change that moves nothing is suspicious at this scale"
    );
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("reshard_runs_total"), Some(1));
    assert_eq!(snap.gauge("reshard_from_shards"), Some(2));
    assert_eq!(snap.gauge("reshard_to_shards"), Some(3));
    assert_eq!(snap.gauge("reshard_epoch"), Some(report.epoch));

    // The rewritten store is a valid 3-shard cut that resume accepts.
    let mut resume_config = target_config;
    resume_config.resume = true;
    let resumed = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        faults,
        Some(&store),
        resume_config,
    )
    .expect("resumed run at the new count");
    assert_eq!(resumed.resumed_from_epoch, Some(report.epoch));
    assert_eq!(resumed.delivered_tweets, uninterrupted.delivered_tweets);
    let sensor = resumed.sensor.expect("resumed sensor");
    assert_sensors_equal(&sensor, &reference, "resharded 2->3 vs uninterrupted 3");
}

/// Shrink: the same drill in the other direction, 4 shards down to 2.
#[test]
fn offline_shrink_then_resume_matches_uninterrupted_run_at_target() {
    let sim = sim(0.01);
    let geocoder = Geocoder::new();

    let mut target_config = shard_config(2);
    target_config.checkpoint_every = 200;
    let uninterrupted = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        FaultConfig::none(),
        None,
        target_config.clone(),
    )
    .expect("uninterrupted run at target");
    let reference = uninterrupted.sensor.expect("reference sensor");

    let store = MemCheckpointStore::new();
    let mut killed_config = shard_config(4);
    killed_config.checkpoint_every = 200;
    killed_config.kill_after = Some(500);
    run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        FaultConfig::none(),
        Some(&store),
        killed_config,
    )
    .expect("killed run");

    let report =
        reshard_checkpoints(&store, 2, &MetricsRegistry::disabled()).expect("shrink reshard");
    assert_eq!((report.from_shards, report.to_shards), (4, 2));

    let mut resume_config = target_config;
    resume_config.resume = true;
    let resumed = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        FaultConfig::none(),
        Some(&store),
        resume_config,
    )
    .expect("resumed run at the new count");
    let sensor = resumed.sensor.expect("resumed sensor");
    assert_sensors_equal(&sensor, &reference, "resharded 4->2 vs uninterrupted 2");
}

/// Online: `--reshard-at K:M` drains the group mid-stream and swaps
/// the topology in-process; the finished artifacts match the
/// uninterrupted run at the target count, and the store comes out in
/// the new layout.
#[test]
fn online_thread_swap_matches_uninterrupted_run_at_target() {
    let sim = sim(0.01);
    let geocoder = Geocoder::new();

    let uninterrupted = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        FaultConfig::none(),
        None,
        shard_config(4),
    )
    .expect("uninterrupted run at target");
    let reference = uninterrupted.sensor.expect("reference sensor");

    let store = MemCheckpointStore::new();
    let mut swap_config = shard_config(2);
    swap_config.checkpoint_every = 200;
    swap_config.reshard_at = Some((700, 4));
    let run = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        FaultConfig::none(),
        Some(&store),
        swap_config,
    )
    .expect("swap run");
    let (swap_epoch, swapped_to) = run.resharded.expect("the swap never fired");
    assert_eq!(swapped_to, 4);
    assert_eq!(run.shards, 4, "the run must finish on the new topology");
    assert_eq!(run.shard_tweets.len(), 4);
    assert_eq!(
        run.metrics.counter("reshard_swaps_total"),
        Some(1),
        "swap counter"
    );

    // The persisted cut was rewritten at the swap: everything at or
    // before the swap epoch is in the 4-shard layout.
    for shard in 0..4u32 {
        let bytes = store
            .load(shard, swap_epoch)
            .expect("store io")
            .expect("swap-epoch checkpoint");
        let ckpt = SensorCheckpoint::decode(&bytes).expect("decode");
        assert_eq!(ckpt.shard_count, 4);
    }

    let sensor = run.sensor.expect("swap-run sensor");
    assert_sensors_equal(&sensor, &reference, "online swap 2->4 vs uninterrupted 4");
}

/// Online swap with per-shard flaky services under recoverable stream
/// faults: `ShardServices::Phased` carries one service table per
/// topology, exactly as the CLI wires `--flaky` with `--reshard-at`.
#[test]
fn online_swap_with_phased_flaky_services_stays_identical() {
    let sim = sim(0.01);
    let geocoder = Geocoder::new();
    let faults = FaultConfig::recoverable(SEED);
    let cfg = FlakyConfig::flaky(SEED);

    // Reference: uninterrupted at 4 with the post-swap service table.
    let target_services: Vec<FlakyGeocoder> = (0..4)
        .map(|s| FlakyGeocoder::new(&geocoder, cfg.for_shard(s, 4)))
        .collect();
    let target_refs: Vec<&(dyn LocationService + Sync)> = target_services
        .iter()
        .map(|s| s as &(dyn LocationService + Sync))
        .collect();
    let uninterrupted = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::PerShard(target_refs),
        faults.clone(),
        None,
        shard_config(4),
    )
    .expect("uninterrupted run at target");
    let reference = uninterrupted.sensor.expect("reference sensor");

    let before: Vec<FlakyGeocoder> = (0..2)
        .map(|s| FlakyGeocoder::new(&geocoder, cfg.for_shard(s, 2)))
        .collect();
    let after: Vec<FlakyGeocoder> = (0..4)
        .map(|s| FlakyGeocoder::new(&geocoder, cfg.for_shard(s, 4)))
        .collect();
    let mut swap_config = shard_config(2);
    swap_config.reshard_at = Some((700, 4));
    let run = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Phased {
            before: before
                .iter()
                .map(|s| s as &(dyn LocationService + Sync))
                .collect(),
            after: after
                .iter()
                .map(|s| s as &(dyn LocationService + Sync))
                .collect(),
        },
        faults,
        None,
        swap_config,
    )
    .expect("phased swap run");
    assert!(run.resharded.is_some(), "the swap never fired");
    assert!(run.fault_stats.disconnects > 0, "faults never fired");
    let sensor = run.sensor.expect("swap-run sensor");
    assert_sensors_equal(&sensor, &reference, "phased flaky swap vs uninterrupted");
}

// ---------------------------------------------------------------------
// Seeded fuzz sweep.
// ---------------------------------------------------------------------

/// Tiny deterministic generator (SplitMix64) so the sweep needs no RNG
/// crate in the fuzz loop and a failing config is reproducible from
/// the printed label alone.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish pick in `lo..=hi` (tiny ranges; bias is irrelevant).
    fn pick(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Preset {
    Off,
    Recoverable,
    GeoOutage,
}

impl Preset {
    fn faults(self) -> FaultConfig {
        match self {
            Preset::Off | Preset::GeoOutage => FaultConfig::none(),
            Preset::Recoverable => FaultConfig::recoverable(SEED),
        }
    }

    /// A fresh service instance for one run. Outage schedules are
    /// call-count keyed, so each run (reference, killed, resumed)
    /// gets its own counters — which is exactly why the outage preset
    /// is gated by replay instead of raw snapshot identity.
    fn service<'g>(self, geocoder: &'g Geocoder) -> Box<dyn LocationService + Sync + 'g> {
        match self {
            Preset::Off => Box::new(FlakyGeocoder::new(geocoder, FlakyConfig::reliable())),
            Preset::Recoverable => Box::new(FlakyGeocoder::new(geocoder, FlakyConfig::flaky(SEED))),
            Preset::GeoOutage => Box::new(FlakyGeocoder::new(
                geocoder,
                FlakyConfig::outage(SEED, 120, u64::MAX),
            )),
        }
    }
}

/// Full clean coverage of the simulated stream, the outage preset's
/// comparison anchor.
fn ingest_clean<'a>(
    sim: &'a TwitterSimulation,
    geocoder: &'a Geocoder,
) -> IncrementalSensor<'a> {
    let mut clean = IncrementalSensor::new(geocoder, |id: UserId| {
        sim.users()
            .get(id.0 as usize)
            .map(|u| u.profile_location.clone())
    });
    for tweet in sim.stream().with_filter(Box::new(KeywordQuery::paper())) {
        clean.ingest(&tweet);
    }
    clean
}

/// Order-insensitive content equality: what dead-letter replay is
/// able to restore. Per-track tweet order is *not* compared — replay
/// appends abandoned tweets after their stream-order successors (see
/// the module docs), which moves export bytes without moving any
/// derived artifact.
fn assert_sensors_equivalent(a: &IncrementalSensor<'_>, b: &IncrementalSensor<'_>, label: &str) {
    assert_eq!(a.tweets_seen(), b.tweets_seen(), "{label}: tweet count");
    assert_eq!(a.user_states(), b.user_states(), "{label}: user states");
    assert_eq!(a.corpus().tweets(), b.corpus().tweets(), "{label}: corpus");
    let aa = a.attention().expect("attention a");
    let ab = b.attention().expect("attention b");
    assert_eq!(aa.users(), ab.users(), "{label}: attention users");
    for &user in aa.users() {
        let ra = aa.attention_of(user).expect("row");
        let rb = ab.attention_of(user).expect("row");
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(rb) {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: attention drifted for {user}");
        }
    }
}

/// Either strict snapshot identity (off/recoverable) or replay-to-
/// clean-coverage (geo-outage; see the module docs for the boundary).
fn assert_run_matches(
    run: donorpulse::core::ShardedStreamRun<'_>,
    reference: &IncrementalSensor<'_>,
    preset: Preset,
    clean: &IncrementalSensor<'_>,
    label: &str,
) {
    let mut sensor = run.sensor.expect("finished run must carry a sensor");
    if preset == Preset::GeoOutage {
        replay_dead_letters(&mut sensor, &run.dead_letters);
        assert_sensors_equivalent(&sensor, clean, &format!("{label}: replayed vs clean"));
    } else {
        assert_eq!(run.parked_at_end, 0, "{label}: parked at end");
        assert_sensors_equal(&sensor, reference, label);
    }
}

/// The sweep proper. `RESHARD_FUZZ_BUDGET` sets the number of random
/// configurations (default 3 to keep tier-1 fast; nightly runs more);
/// `RESHARD_FUZZ_SEED` re-seeds the generator to reproduce a failure.
#[test]
fn seeded_reshard_fuzz_sweep() {
    let budget: u64 = std::env::var("RESHARD_FUZZ_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let seed: u64 = std::env::var("RESHARD_FUZZ_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(SEED);
    let sim = sim(0.006);
    let geocoder = Geocoder::new();
    let clean = ingest_clean(&sim, &geocoder);
    let total = clean.tweets_seen();
    assert!(total >= 400, "sim too small to place a mid-stream cut");

    let mut mix = Mix(seed);
    for round in 0..budget {
        let from = mix.pick(1, 4) as usize;
        let to = mix.pick(1, 5) as usize;
        let cut_at = mix.pick(total / 4, total * 3 / 4);
        let preset = match mix.pick(0, 2) {
            0 => Preset::Off,
            1 => Preset::Recoverable,
            _ => Preset::GeoOutage,
        };
        let wire = if mix.pick(0, 1) == 0 {
            WireMode::V1
        } else {
            WireMode::v2()
        };
        let online = mix.pick(0, 1) == 1;
        let label = format!(
            "round {round} (seed {seed}): {from}->{to} cut {cut_at} {preset:?} {wire:?} {}",
            if online { "online" } else { "offline" }
        );

        let config_for = |shards: usize| {
            let mut c = shard_config(shards);
            c.stream.wire = wire;
            c.checkpoint_every = 100;
            c
        };

        // Uninterrupted reference at the target count.
        let ref_service = preset.service(&geocoder);
        let reference = run_sharded_stream(
            &sim,
            &geocoder,
            ShardServices::Shared(&*ref_service),
            preset.faults(),
            None,
            config_for(to),
        )
        .unwrap_or_else(|e| panic!("{label}: reference run: {e}"));
        let reference_sensor = reference.sensor.expect("reference sensor");

        if online {
            let store = MemCheckpointStore::new();
            let mut config = config_for(from);
            config.reshard_at = Some((cut_at, to));
            let service = preset.service(&geocoder);
            let run = run_sharded_stream(
                &sim,
                &geocoder,
                ShardServices::Shared(&*service),
                preset.faults(),
                Some(&store),
                config,
            )
            .unwrap_or_else(|e| panic!("{label}: swap run: {e}"));
            assert!(run.resharded.is_some(), "{label}: swap never fired");
            assert_eq!(run.shards, to, "{label}: final topology");
            assert_run_matches(run, &reference_sensor, preset, &clean, &label);
        } else {
            let store = MemCheckpointStore::new();
            let mut killed_config = config_for(from);
            killed_config.kill_after = Some(cut_at);
            let kill_service = preset.service(&geocoder);
            let killed = run_sharded_stream(
                &sim,
                &geocoder,
                ShardServices::Shared(&*kill_service),
                preset.faults(),
                Some(&store),
                killed_config,
            )
            .unwrap_or_else(|e| panic!("{label}: killed run: {e}"));
            assert!(killed.last_epoch >= 1, "{label}: no complete epoch to cut");

            let report = reshard_checkpoints(&store, to, &MetricsRegistry::disabled())
                .unwrap_or_else(|e| panic!("{label}: reshard: {e}"));
            assert_eq!(report.from_shards, from, "{label}: discovered count");

            let mut resume_config = config_for(to);
            resume_config.resume = true;
            let resume_service = preset.service(&geocoder);
            let resumed = run_sharded_stream(
                &sim,
                &geocoder,
                ShardServices::Shared(&*resume_service),
                preset.faults(),
                Some(&store),
                resume_config,
            )
            .unwrap_or_else(|e| panic!("{label}: resumed run: {e}"));
            assert_eq!(
                resumed.resumed_from_epoch,
                Some(report.epoch),
                "{label}: resume must restore the resharded cut"
            );
            assert_run_matches(resumed, &reference_sensor, preset, &clean, &label);
        }
    }
}

// ---------------------------------------------------------------------
// Negative paths: every refusal is an operator-readable error.
// ---------------------------------------------------------------------

fn bare_checkpoint(shard_id: u32, shard_count: u32, epoch: u64) -> SensorCheckpoint {
    SensorCheckpoint {
        shard_id,
        shard_count,
        epoch,
        router_high_water: None,
        export: SensorExport::default(),
        parked: Vec::new(),
        campaign: DEFAULT_CAMPAIGN.to_string(),
        extra_campaigns: Vec::new(),
    }
}

#[test]
fn reshard_refuses_impossible_targets() {
    let store = MemCheckpointStore::new();
    let metrics = MetricsRegistry::disabled();
    let err = reshard_checkpoints(&store, 0, &metrics).unwrap_err();
    assert!(err.to_string().contains("at least 1"), "{err}");
    let err = reshard_checkpoints(&store, MAX_SHARDS + 1, &metrics).unwrap_err();
    assert!(err.to_string().contains("ceiling"), "{err}");
}

#[test]
fn reshard_refuses_an_empty_store_and_an_incomplete_epoch() {
    let store = MemCheckpointStore::new();
    let metrics = MetricsRegistry::disabled();
    let err = reshard_checkpoints(&store, 2, &metrics).unwrap_err();
    assert!(err.to_string().contains("no cut"), "{err}");

    // Shard 0 alone of a 2-shard layout: no epoch is complete.
    store
        .save(0, 1, &bare_checkpoint(0, 2, 1).encode())
        .expect("seed store");
    let err = reshard_checkpoints(&store, 3, &metrics).unwrap_err();
    assert!(err.to_string().contains("complete"), "{err}");
}

#[test]
fn reshard_refuses_mixed_campaign_rosters() {
    let store = MemCheckpointStore::new();
    store
        .save(0, 1, &bare_checkpoint(0, 2, 1).encode())
        .expect("seed shard 0");
    let mut other = bare_checkpoint(1, 2, 1);
    other.extra_campaigns = vec![CampaignSection {
        name: "blood-drive".into(),
        export: SensorExport::default(),
    }];
    store.save(1, 1, &other.encode()).expect("seed shard 1");
    let err = reshard_checkpoints(&store, 3, &MetricsRegistry::disabled()).unwrap_err();
    assert!(err.to_string().contains("rosters"), "{err}");
}

/// Resume still refuses a raw shard-count mismatch — and the message
/// is pinned to name the sanctioned remedy, so an operator staring at
/// the refusal knows the next command to type.
#[test]
fn resume_mismatch_error_names_the_reshard_verb() {
    let sim = sim(0.004);
    let geocoder = Geocoder::new();
    let store = MemCheckpointStore::new();
    let mut config = shard_config(2);
    config.checkpoint_every = 200;
    config.kill_after = Some(400);
    run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        FaultConfig::none(),
        Some(&store),
        config,
    )
    .expect("killed run");

    let mut wrong = shard_config(1);
    wrong.resume = true;
    let err = match run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        FaultConfig::none(),
        Some(&store),
        wrong,
    ) {
        Ok(_) => panic!("resume must refuse a silent re-shard"),
        Err(err) => err,
    };
    let msg = err.to_string();
    assert!(msg.contains("re-routing"), "{msg}");
    assert!(
        msg.contains("repro reshard"),
        "the refusal must name the remedy verb: {msg}"
    );
}

#[test]
fn online_swap_refuses_impossible_targets_up_front() {
    let sim = sim(0.004);
    let geocoder = Geocoder::new();
    for (to, needle) in [(0usize, "at least 1"), (MAX_SHARDS + 1, "ceiling")] {
        let mut config = shard_config(2);
        config.reshard_at = Some((400, to));
        let err = match run_sharded_stream(
            &sim,
            &geocoder,
            ShardServices::Shared(&geocoder),
            FaultConfig::none(),
            None,
            config,
        ) {
            Ok(_) => panic!("an impossible swap target must be refused before routing"),
            Err(err) => err,
        };
        assert!(err.to_string().contains(needle), "{err}");
    }
}

// ---------------------------------------------------------------------
// Golden vectors: the resharded layout, byte for byte.
// ---------------------------------------------------------------------

fn fixture_path(shard: u32) -> String {
    format!(
        "{}/tests/data/reshard/resharded_shard_{shard}.ckpt",
        env!("CARGO_MANIFEST_DIR")
    )
}

const GOLDEN_EPOCH: u64 = 5;
const GOLDEN_HIGH_WATER: u64 = 2000;

fn golden_export(users: std::ops::Range<u64>, shard: usize, shards: usize, offset: u64) -> SensorExport {
    let mut tracks = BTreeMap::new();
    let mut high_water = None;
    for u in users {
        if route_shard(UserId(u), shards) != shard {
            continue;
        }
        let id = TweetId(offset + u * 10);
        high_water = high_water.max(Some(id));
        tracks.insert(
            UserId(u),
            TrackExport {
                state: None,
                geo_locked: false,
                tweets: vec![Tweet {
                    id,
                    user: UserId(u),
                    created_at: SimInstant(id.0),
                    text: format!("kidney donor tweet {u}"),
                    geo: None,
                }],
                mentions: MentionCounts::new(),
            },
        );
    }
    SensorExport {
        tracks,
        duplicates_ignored: shard as u64,
        high_water,
    }
}

/// A deterministic two-campaign 2-shard cut: the re-shard input every
/// fixture derives from. Changing this is a fixture-breaking act.
fn golden_source_store() -> MemCheckpointStore {
    let store = MemCheckpointStore::new();
    for shard in 0..2usize {
        let parked: Vec<Tweet> = (0..8u64)
            .filter(|&u| route_shard(UserId(u), 2) == shard)
            .map(|u| Tweet {
                id: TweetId(1900 + u),
                user: UserId(u),
                created_at: SimInstant(1900 + u),
                text: format!("parked liver tweet {u}"),
                geo: None,
            })
            .collect();
        let ckpt = SensorCheckpoint {
            shard_id: shard as u32,
            shard_count: 2,
            epoch: GOLDEN_EPOCH,
            router_high_water: Some(TweetId(GOLDEN_HIGH_WATER)),
            export: golden_export(0..40, shard, 2, 0),
            parked,
            campaign: DEFAULT_CAMPAIGN.to_string(),
            extra_campaigns: vec![CampaignSection {
                name: "blood-drive".into(),
                export: golden_export(40..60, shard, 2, 1000),
            }],
        };
        store
            .save(shard as u32, GOLDEN_EPOCH, &ckpt.encode())
            .expect("seed golden store");
    }
    store
}

fn golden_resharded_bytes() -> Vec<Vec<u8>> {
    let store = golden_source_store();
    let report = reshard_checkpoints(&store, 3, &MetricsRegistry::disabled())
        .expect("golden reshard");
    assert_eq!(report.epoch, GOLDEN_EPOCH);
    (0..3u32)
        .map(|shard| {
            store
                .load(shard, GOLDEN_EPOCH)
                .expect("store io")
                .expect("resharded layout file")
        })
        .collect()
}

#[test]
fn golden_vectors_pin_the_resharded_layout_byte_for_byte() {
    for (shard, bytes) in golden_resharded_bytes().into_iter().enumerate() {
        let path = fixture_path(shard as u32);
        let golden = std::fs::read(&path).unwrap_or_else(|e| {
            panic!("missing golden vector {path}: {e} (REGEN_WIRE_FIXTURES=1 regenerates)")
        });
        assert_eq!(
            bytes, golden,
            "resharded shard {shard} drifted from the golden vector — a \
             layout change needs a wire version bump, not a fixture refresh"
        );
    }
}

/// The fixtures must stand on their own: decode without the source
/// store and exhibit every re-shard invariant (new modulus, preserved
/// epoch and high water, preserved roster, correctly re-keyed owners).
#[test]
fn golden_fixtures_decode_standalone_with_the_pinned_layout() {
    let mut tracks = 0u64;
    let mut dup_sum = 0u64;
    for shard in 0..3u32 {
        let path = fixture_path(shard);
        let golden = std::fs::read(&path).unwrap_or_else(|e| {
            panic!("missing golden vector {path}: {e} (REGEN_WIRE_FIXTURES=1 regenerates)")
        });
        let ckpt = SensorCheckpoint::decode(&golden).expect("fixture decodes");
        assert_eq!(ckpt.shard_id, shard);
        assert_eq!(ckpt.shard_count, 3, "fixtures pin the 2->3 re-shard");
        assert_eq!(ckpt.epoch, GOLDEN_EPOCH, "the cut's epoch is preserved");
        assert_eq!(ckpt.router_high_water, Some(TweetId(GOLDEN_HIGH_WATER)));
        assert_eq!(
            ckpt.campaign_names(),
            vec![DEFAULT_CAMPAIGN, "blood-drive"],
            "the roster survives the rewrite"
        );
        dup_sum += ckpt.export.duplicates_ignored;
        for export in std::iter::once(&ckpt.export)
            .chain(ckpt.extra_campaigns.iter().map(|c| &c.export))
        {
            for (&user, track) in &export.tracks {
                assert_eq!(
                    route_shard(user, 3),
                    shard as usize,
                    "track for {user:?} landed on the wrong shard"
                );
                assert!(
                    export.high_water >= track.tweets.iter().map(|t| t.id).max(),
                    "per-export high water below an owned tweet"
                );
                tracks += 1;
            }
        }
        for tweet in &ckpt.parked {
            assert_eq!(
                route_shard(tweet.user, 3),
                shard as usize,
                "parked tweet for {:?} landed on the wrong shard",
                tweet.user
            );
        }
    }
    assert_eq!(tracks, 60, "tracks lost or duplicated by the split");
    assert_eq!(dup_sum, 1, "merged duplicates sum (0 + 1) must survive");
}

/// Rewrites the golden vectors from the current re-shard output. A
/// no-op unless `REGEN_WIRE_FIXTURES=1` — regenerating must be a
/// deliberate act that accompanies a wire version bump.
#[test]
fn regenerate_reshard_golden_vectors() {
    if std::env::var("REGEN_WIRE_FIXTURES").as_deref() != Ok("1") {
        return;
    }
    for (shard, bytes) in golden_resharded_bytes().into_iter().enumerate() {
        let path = fixture_path(shard as u32);
        let dir = std::path::Path::new(&path).parent().expect("fixture dir");
        std::fs::create_dir_all(dir).expect("create fixture dir");
        std::fs::write(&path, bytes).expect("write fixture");
    }
}
