//! Conformance and corruption-fuzz suite for the byte-level wire codec
//! (`twitter::wire`).
//!
//! Three layers of guarantee, each pinned deterministically (seeded
//! SplitMix64 streams, no time or RNG state):
//!
//! 1. **Round-trip** — thousands of generated tweets (adversarial text
//!    included: empty, multi-byte UTF-8, the magic string embedded in
//!    the payload, NaN-patterned geo bits) survive encode → decode
//!    bit-exactly, alone and concatenated through a [`FrameReader`].
//! 2. **Corruption sweep** — every single-bit flip and every truncation
//!    point of reference frames yields a *classified* error or a clean
//!    resync; no damage ever decodes to a wrong tweet or panics.
//! 3. **Golden vectors** — `tests/data/wire_v1/*.dpwf` and
//!    `tests/data/wire_v2/*.dpwf` pin both encoders byte for byte, so a
//!    layout change cannot land silently. Re-run with
//!    `REGEN_WIRE_FIXTURES=1` to regenerate after an intentional
//!    (version-bumped) change.
//!
//! The same three layers cover wire v2 (batched frames): seeded
//! bit-flip and truncation sweeps over multi-tweet batches, proof that
//! a damaged batch never yields *any* tweet (all-or-nothing framing),
//! and cross-version resync — a reader parked on damage between a v1
//! frame and a v2 batch recovers whichever intact frames follow.

use donorpulse::twitter::wire::{
    BatchFrame, FrameError, FrameReader, TweetFrame, HEADER_LEN, MAGIC, TRAILER_LEN,
};
use donorpulse::twitter::{SimInstant, Tweet, TweetId, UserId};
use std::collections::BTreeSet;

/// SplitMix64 finalizer — the repo-wide seeded stream.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Text fragments chosen to stress the codec: multi-byte UTF-8, the
/// frame magic inside a payload, and the empty string.
const FRAGMENTS: &[&str] = &[
    "kidney",
    "liver",
    "heart",
    "lungs",
    "pancreas",
    "intestine",
    "organ donor",
    "transplant list",
    "❤",
    "DPWF",
    "register today",
    "años de espera",
    "посвящение",
    "",
];

/// A deterministic tweet from a seed and an index. Geo coordinates are
/// raw bit patterns (including NaN payloads) in one arm to prove the
/// codec is bit-transparent, plausible values in another.
fn seeded_tweet(seed: u64, i: u64) -> Tweet {
    let z0 = splitmix(seed ^ i);
    let z1 = splitmix(z0);
    let z2 = splitmix(z1);
    let mut text = String::new();
    for k in 0..(z0 % 6) {
        let frag = FRAGMENTS[(splitmix(z0 ^ k) % FRAGMENTS.len() as u64) as usize];
        if !text.is_empty() && !frag.is_empty() {
            text.push(' ');
        }
        text.push_str(frag);
    }
    let geo = match z1 % 4 {
        0 => None,
        1 => Some((f64::from_bits(z1), f64::from_bits(z2))),
        _ => Some((
            (z1 % 180) as f64 - 90.0 + 0.25,
            (z2 % 360) as f64 - 180.0 + 0.5,
        )),
    };
    Tweet {
        id: TweetId(i),
        user: UserId(z0 % 10_000),
        created_at: SimInstant(z2),
        text,
        geo,
    }
}

/// Field-wise equality with geo compared as raw bits (NaN-safe).
fn assert_tweet_eq(a: &Tweet, b: &Tweet, label: &str) {
    assert_eq!(a.id, b.id, "{label}: id");
    assert_eq!(a.user, b.user, "{label}: user");
    assert_eq!(a.created_at, b.created_at, "{label}: created_at");
    assert_eq!(a.text, b.text, "{label}: text");
    assert_eq!(
        a.geo.map(|(x, y)| (x.to_bits(), y.to_bits())),
        b.geo.map(|(x, y)| (x.to_bits(), y.to_bits())),
        "{label}: geo"
    );
}

#[test]
fn thousands_of_seeded_tweets_round_trip() {
    const N: u64 = 5_000;
    for i in 0..N {
        let t = seeded_tweet(0x0005_1EED, i);
        let frame = TweetFrame::encode(&t);
        let back = TweetFrame::decode(&frame).expect("intact frame must decode");
        assert_tweet_eq(&back, &t, "strict round-trip");
    }
}

#[test]
fn concatenated_frames_read_back_in_order() {
    const N: u64 = 2_000;
    let tweets: Vec<Tweet> = (0..N).map(|i| seeded_tweet(0xCAFE, i)).collect();
    let mut buf = Vec::new();
    for t in &tweets {
        buf.extend_from_slice(&TweetFrame::encode(t));
    }
    let mut reader = FrameReader::new(&buf);
    let mut n = 0usize;
    for item in reader.by_ref() {
        let got = item.expect("clean stream has no errors");
        assert_tweet_eq(&got, &tweets[n], "stream round-trip");
        n += 1;
    }
    assert_eq!(n, tweets.len());
    assert_eq!(reader.resyncs(), 0);
    assert_eq!(reader.bytes_skipped(), 0);
}

/// The reference frames for the corruption sweeps: one of each shape
/// (no geo, geo, magic-in-text, empty text).
fn reference_tweets() -> Vec<Tweet> {
    vec![
        Tweet {
            id: TweetId(1),
            user: UserId(2),
            created_at: SimInstant(3),
            text: "organ donor".to_string(),
            geo: None,
        },
        Tweet {
            id: TweetId(0xDEAD_BEEF),
            user: UserId(0x0123_4567_89AB_CDEF),
            created_at: SimInstant(86_400_000),
            text: "DPWF ❤ liver año".to_string(),
            geo: Some((37.6872, -97.3301)),
        },
        Tweet {
            id: TweetId(u64::MAX),
            user: UserId(0),
            created_at: SimInstant(u64::MAX),
            text: String::new(),
            geo: Some((-0.0, 0.0)),
        },
    ]
}

#[test]
fn every_single_bit_flip_is_a_classified_error() {
    for t in reference_tweets() {
        let frame = TweetFrame::encode(&t);
        for bit in 0..frame.len() * 8 {
            let mut damaged = frame.clone();
            damaged[bit / 8] ^= 1 << (bit % 8);
            let err =
                TweetFrame::decode(&damaged).expect_err("a single-bit flip must never decode");
            // Every failure carries a stable class label.
            assert!(
                matches!(
                    err.class(),
                    "truncated" | "bad-checksum" | "bad-magic" | "bad-payload"
                ),
                "bit {bit}: unclassified error {err:?}"
            );
        }
    }
}

#[test]
fn every_truncation_point_is_a_classified_error() {
    for t in reference_tweets() {
        let frame = TweetFrame::encode(&t);
        for cut in 0..frame.len() {
            let err =
                TweetFrame::decode(&frame[..cut]).expect_err("a truncated frame must never decode");
            assert!(
                matches!(err, FrameError::Truncated { .. }),
                "cut {cut} gave {err:?}, not Truncated"
            );
        }
    }
}

#[test]
fn bit_flip_sweep_over_a_stream_never_yields_a_wrong_tweet() {
    let tweets = reference_tweets();
    let frames: Vec<Vec<u8>> = tweets.iter().map(TweetFrame::encode).collect();
    let originals: BTreeSet<Vec<u8>> = frames.iter().cloned().collect();
    let clean: Vec<u8> = frames.concat();
    for bit in 0..clean.len() * 8 {
        let mut buf = clean.clone();
        buf[bit / 8] ^= 1 << (bit % 8);
        let mut decoded = 0usize;
        let mut errors = 0usize;
        for item in FrameReader::new(&buf) {
            match item {
                Ok(tweet) => {
                    assert!(
                        originals.contains(&TweetFrame::encode(&tweet)),
                        "bit {bit} decoded a wrong tweet: {tweet:?}"
                    );
                    decoded += 1;
                }
                Err(_) => errors += 1,
            }
        }
        // The flip provably kills exactly the frame it lands in; the
        // reader must resynchronize and recover the other two.
        assert_eq!(decoded, tweets.len() - 1, "bit {bit}: wrong recovery count");
        assert!(errors >= 1, "bit {bit}: damage went unreported");
    }
}

#[test]
fn truncation_sweep_over_a_stream_never_yields_a_wrong_tweet() {
    let tweets = reference_tweets();
    let frames: Vec<Vec<u8>> = tweets.iter().map(TweetFrame::encode).collect();
    let originals: BTreeSet<Vec<u8>> = frames.iter().cloned().collect();
    let clean: Vec<u8> = frames.concat();
    // Frame end offsets, for counting how many frames a cut preserves.
    let mut ends = Vec::new();
    let mut acc = 0usize;
    for f in &frames {
        acc += f.len();
        ends.push(acc);
    }
    for cut in 0..clean.len() {
        let buf = &clean[..cut];
        let whole = ends.iter().filter(|&&e| e <= cut).count();
        let mut decoded = 0usize;
        for tweet in FrameReader::new(buf).flatten() {
            assert!(
                originals.contains(&TweetFrame::encode(&tweet)),
                "cut {cut} decoded a wrong tweet: {tweet:?}"
            );
            decoded += 1;
        }
        assert_eq!(
            decoded, whole,
            "cut {cut} must decode exactly the frames it wholly contains"
        );
    }
}

#[test]
fn header_constants_are_the_documented_layout() {
    // The layout diagram in the module docs and docs/ROBUSTNESS.md is
    // load-bearing; pin the numbers it quotes.
    assert_eq!(&MAGIC, b"DPWF");
    assert_eq!(HEADER_LEN, 11);
    assert_eq!(TRAILER_LEN, 8);
    let frame = TweetFrame::encode(&reference_tweets()[0]);
    assert_eq!(&frame[..4], b"DPWF");
    assert_eq!(frame[4], 3, "kind byte");
    assert_eq!(u16::from_le_bytes([frame[5], frame[6]]), 1, "version");
}

/// Fixture names paired with the reference tweets, in order.
fn fixture_names() -> [&'static str; 3] {
    ["plain", "unicode_magic", "empty_text_max_id"]
}

fn fixture_path(name: &str) -> String {
    format!(
        "{}/tests/data/wire_v1/{name}.dpwf",
        env!("CARGO_MANIFEST_DIR")
    )
}

#[test]
fn golden_vectors_pin_the_encoder_byte_for_byte() {
    for (name, tweet) in fixture_names().iter().zip(reference_tweets()) {
        let path = fixture_path(name);
        let golden = std::fs::read(&path).unwrap_or_else(|e| {
            panic!("missing golden vector {path}: {e} (REGEN_WIRE_FIXTURES=1 regenerates)")
        });
        let encoded = TweetFrame::encode(&tweet);
        assert_eq!(
            encoded, golden,
            "{name}: encoder output drifted from the v1 golden vector — \
             a layout change needs a wire version bump, not a fixture refresh"
        );
        let back = TweetFrame::decode(&golden).expect("golden vector must decode");
        assert_tweet_eq(&back, &tweet, name);
    }
}

/// Rewrites the golden vectors from the current encoder. A no-op
/// unless `REGEN_WIRE_FIXTURES=1` is set — regenerating must be a
/// deliberate act that accompanies a wire version bump.
#[test]
fn regenerate_golden_vectors() {
    if std::env::var("REGEN_WIRE_FIXTURES").as_deref() != Ok("1") {
        return;
    }
    let dir = format!("{}/tests/data/wire_v1", env!("CARGO_MANIFEST_DIR"));
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    for (name, tweet) in fixture_names().iter().zip(reference_tweets()) {
        std::fs::write(fixture_path(name), TweetFrame::encode(&tweet)).expect("write fixture");
    }
}

// ---------------------------------------------------------------------
// Wire v2: batched frames.
// ---------------------------------------------------------------------

#[test]
fn v2_batches_round_trip_at_many_sizes() {
    for &n in &[1usize, 2, 7, 64, 257] {
        let tweets: Vec<Tweet> = (0..n as u64)
            .map(|i| seeded_tweet(0xB47C ^ n as u64, i))
            .collect();
        let frame = BatchFrame::encode(&tweets);
        let back = BatchFrame::decode(&frame).expect("intact batch must decode");
        assert_eq!(back.len(), n, "batch of {n}: record count");
        for (a, b) in back.iter().zip(&tweets) {
            assert_tweet_eq(a, b, "v2 owned round-trip");
        }
        // The zero-copy path must see the same records bit for bit.
        let views = BatchFrame::decode_views(&frame).expect("borrowed decode");
        assert_eq!(views.len(), n);
        for (v, b) in views.iter().zip(&tweets) {
            assert_tweet_eq(&v.to_tweet(), b, "v2 borrowed round-trip");
        }
    }
}

#[test]
fn mixed_version_stream_reads_back_in_order() {
    // v1 singles and v2 batches of varying sizes interleaved on one
    // stream — the version-sniffing reader must not care.
    let tweets: Vec<Tweet> = (0..300).map(|i| seeded_tweet(0x771C, i)).collect();
    let mut buf = Vec::new();
    let mut i = 0usize;
    let mut chunk = 1usize;
    while i < tweets.len() {
        let end = (i + chunk).min(tweets.len());
        if chunk % 2 == 1 {
            for t in &tweets[i..end] {
                buf.extend_from_slice(&TweetFrame::encode(t));
            }
        } else {
            buf.extend_from_slice(&BatchFrame::encode(&tweets[i..end]));
        }
        i = end;
        chunk = chunk % 7 + 1;
    }
    let mut reader = FrameReader::new(&buf);
    let mut n = 0usize;
    for item in reader.by_ref() {
        assert_tweet_eq(&item.expect("clean stream"), &tweets[n], "mixed stream");
        n += 1;
    }
    assert_eq!(n, tweets.len());
    assert_eq!(reader.resyncs(), 0);
    assert_eq!(reader.bytes_skipped(), 0);
}

/// Nine seeded tweets in three batches of three — small enough that
/// exhaustive bit sweeps stay fast, batched enough that the
/// all-or-nothing batch guarantee is actually exercised.
fn v2_sweep_stream() -> (Vec<Tweet>, Vec<Vec<u8>>) {
    let tweets: Vec<Tweet> = (0..9).map(|i| seeded_tweet(0xF11D, i)).collect();
    let frames: Vec<Vec<u8>> = tweets.chunks(3).map(BatchFrame::encode).collect();
    (tweets, frames)
}

#[test]
fn v2_bit_flip_sweep_never_yields_a_wrong_tweet() {
    let (tweets, frames) = v2_sweep_stream();
    let clean: Vec<u8> = frames.concat();
    for bit in 0..clean.len() * 8 {
        let mut buf = clean.clone();
        buf[bit / 8] ^= 1 << (bit % 8);
        let mut decoded = 0usize;
        let mut errors = 0usize;
        for item in FrameReader::new(&buf) {
            match item {
                Ok(tweet) => {
                    let orig = tweets
                        .get(tweet.id.0 as usize)
                        .unwrap_or_else(|| panic!("bit {bit} decoded unknown id {:?}", tweet.id));
                    assert_tweet_eq(&tweet, orig, "v2 flip sweep");
                    decoded += 1;
                }
                Err(_) => errors += 1,
            }
        }
        // A flip kills exactly the batch it lands in — all three of its
        // tweets, never a partial batch, never a neighbor.
        assert_eq!(decoded, 6, "bit {bit}: a flip must kill exactly its batch");
        assert!(errors >= 1, "bit {bit}: damage went unreported");
    }
}

#[test]
fn v2_truncation_sweep_never_yields_a_wrong_tweet() {
    let (tweets, frames) = v2_sweep_stream();
    let clean: Vec<u8> = frames.concat();
    let mut ends = Vec::new();
    let mut acc = 0usize;
    for f in &frames {
        acc += f.len();
        ends.push(acc);
    }
    for cut in 0..clean.len() {
        let buf = &clean[..cut];
        let whole_batches = ends.iter().filter(|&&e| e <= cut).count();
        let mut decoded = 0usize;
        for tweet in FrameReader::new(buf).flatten() {
            let orig = tweets
                .get(tweet.id.0 as usize)
                .unwrap_or_else(|| panic!("cut {cut} decoded unknown id {:?}", tweet.id));
            assert_tweet_eq(&tweet, orig, "v2 truncation sweep");
            decoded += 1;
        }
        assert_eq!(
            decoded,
            whole_batches * 3,
            "cut {cut} must decode exactly the batches it wholly contains"
        );
    }
}

#[test]
fn reader_resyncs_across_a_damaged_v2_batch_between_v1_frames() {
    // v1 frame | damaged v2 batch | v1 frame: the reader recovers both
    // v1 frames and none of the damaged batch's four tweets leak.
    let before = seeded_tweet(0x5EA0, 0);
    let batch: Vec<Tweet> = (1..=4).map(|i| seeded_tweet(0x5EA0, i)).collect();
    let after = seeded_tweet(0x5EA0, 9);
    let mut damaged = BatchFrame::encode(&batch);
    let mid = damaged.len() / 2;
    damaged[mid] ^= 0x10;
    assert!(BatchFrame::decode(&damaged).is_err(), "damage must stick");

    let mut buf = TweetFrame::encode(&before);
    buf.extend_from_slice(&damaged);
    buf.extend_from_slice(&TweetFrame::encode(&after));

    let mut reader = FrameReader::new(&buf);
    let mut got = Vec::new();
    let mut errors = 0usize;
    for item in reader.by_ref() {
        match item {
            Ok(t) => got.push(t),
            Err(_) => errors += 1,
        }
    }
    assert_eq!(got.len(), 2, "exactly the two intact v1 frames survive");
    assert_tweet_eq(&got[0], &before, "v1 before the damage");
    assert_tweet_eq(&got[1], &after, "v1 after the damage");
    assert!(errors >= 1, "the damaged batch must be reported");
    assert!(reader.resyncs() >= 1, "recovery must go through resync");
    assert!(
        got.iter().all(|t| (1..=4).all(|i| t.id != TweetId(i))),
        "no tweet from the damaged batch may leak"
    );
}

/// Canonical LEB128 read, mirroring the documented v2 varint layout.
fn read_varint(buf: &[u8]) -> (u64, usize) {
    let mut value = 0u64;
    let mut shift = 0u32;
    let mut n = 0usize;
    for &b in buf {
        value |= ((b & 0x7F) as u64) << shift;
        n += 1;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    (value, n)
}

#[test]
fn v2_header_layout_is_the_documented_prefix() {
    // magic(4) | kind(1) | version u16 LE(2) | payload_len varint |
    // count varint | records | word-FNV trailer(8). The count varint is
    // *outside* payload_len; the trailer covers everything before it.
    let tweets = reference_tweets();
    let frame = BatchFrame::encode(&tweets);
    assert_eq!(&frame[..4], b"DPWF");
    assert_eq!(frame[4], 3, "kind byte");
    assert_eq!(u16::from_le_bytes([frame[5], frame[6]]), 2, "version");
    let (payload_len, len_n) = read_varint(&frame[7..]);
    let (count, count_n) = read_varint(&frame[7 + len_n..]);
    assert_eq!(count, tweets.len() as u64, "batch count varint");
    assert_eq!(
        frame.len(),
        7 + len_n + count_n + payload_len as usize + TRAILER_LEN,
        "total layout: prefix + varints + payload + trailer"
    );
}

/// v2 fixture names paired with their batch contents, in order.
fn v2_fixtures() -> Vec<(&'static str, Vec<Tweet>)> {
    vec![
        ("single", vec![reference_tweets()[0].clone()]),
        ("reference_trio", reference_tweets()),
        (
            "sixteen_seeded",
            (0..16).map(|i| seeded_tweet(0x601D, i)).collect(),
        ),
    ]
}

fn v2_fixture_path(name: &str) -> String {
    format!(
        "{}/tests/data/wire_v2/{name}.dpwf",
        env!("CARGO_MANIFEST_DIR")
    )
}

#[test]
fn v2_golden_vectors_pin_the_encoder_byte_for_byte() {
    for (name, tweets) in v2_fixtures() {
        let path = v2_fixture_path(name);
        let golden = std::fs::read(&path).unwrap_or_else(|e| {
            panic!("missing golden vector {path}: {e} (REGEN_WIRE_FIXTURES=1 regenerates)")
        });
        let encoded = BatchFrame::encode(&tweets);
        assert_eq!(
            encoded, golden,
            "{name}: encoder output drifted from the v2 golden vector — \
             a layout change needs a wire version bump, not a fixture refresh"
        );
        let back = BatchFrame::decode(&golden).expect("golden vector must decode");
        assert_eq!(back.len(), tweets.len());
        for (a, b) in back.iter().zip(&tweets) {
            assert_tweet_eq(a, b, name);
        }
    }
}

/// v2 counterpart of [`regenerate_golden_vectors`]; same
/// `REGEN_WIRE_FIXTURES=1` contract.
#[test]
fn regenerate_v2_golden_vectors() {
    if std::env::var("REGEN_WIRE_FIXTURES").as_deref() != Ok("1") {
        return;
    }
    let dir = format!("{}/tests/data/wire_v2", env!("CARGO_MANIFEST_DIR"));
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    for (name, tweets) in v2_fixtures() {
        std::fs::write(v2_fixture_path(name), BatchFrame::encode(&tweets)).expect("write fixture");
    }
}

// ---------------------------------------------------------------------
// Process-group frames (handshake / marker / control) — the supervisor
// wire. Same three layers as the tweet codec: golden vectors pin the
// layouts, full bit-flip sweeps prove damage is always a classified
// error, and the marker sweep carries the checkpoint-safety argument:
// a cut commits only when an *intact* marker decodes, so no damaged
// marker can ever commit one.
// ---------------------------------------------------------------------

use donorpulse::twitter::wire::{ControlFrame, HandshakeFrame, MarkerFrame};

/// Process-group fixture names paired with their frame bytes.
fn proc_fixtures() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("handshake_fresh", HandshakeFrame::new(0, 4, None).encode()),
        (
            "handshake_resume",
            HandshakeFrame::new(3, 4, Some(17)).encode(),
        ),
        (
            "marker_cut",
            MarkerFrame {
                epoch: 9,
                high_water: Some(123_456),
            }
            .encode(),
        ),
        (
            "marker_empty",
            MarkerFrame {
                epoch: 1,
                high_water: None,
            }
            .encode(),
        ),
        ("control_eos", ControlFrame::EndOfStream.encode()),
        ("control_ack", ControlFrame::Ack { epoch: 9 }.encode()),
        (
            "control_report",
            ControlFrame::Report {
                payload: vec![0xD0, 0x9F, 0x57, 0x00, 0x01],
            }
            .encode(),
        ),
    ]
}

#[test]
fn proc_golden_vectors_pin_the_supervisor_wire_byte_for_byte() {
    for (name, encoded) in proc_fixtures() {
        let path = v2_fixture_path(name);
        let golden = std::fs::read(&path).unwrap_or_else(|e| {
            panic!("missing golden vector {path}: {e} (REGEN_WIRE_FIXTURES=1 regenerates)")
        });
        assert_eq!(
            encoded, golden,
            "{name}: encoder output drifted from the golden vector — \
             a layout change needs a PROC_WIRE_VERSION bump, not a fixture refresh"
        );
    }
    // And the golden bytes decode back to themselves.
    let h = HandshakeFrame::decode(&std::fs::read(v2_fixture_path("handshake_resume")).unwrap())
        .expect("golden handshake decodes");
    assert_eq!((h.shard, h.shards, h.resume_epoch), (3, 4, Some(17)));
    let m = MarkerFrame::decode(&std::fs::read(v2_fixture_path("marker_cut")).unwrap())
        .expect("golden marker decodes");
    assert_eq!((m.epoch, m.high_water), (9, Some(123_456)));
    let c = ControlFrame::decode(&std::fs::read(v2_fixture_path("control_ack")).unwrap())
        .expect("golden control decodes");
    assert_eq!(c, ControlFrame::Ack { epoch: 9 });
}

/// Same `REGEN_WIRE_FIXTURES=1` contract as the tweet fixtures.
#[test]
fn regenerate_proc_golden_vectors() {
    if std::env::var("REGEN_WIRE_FIXTURES").as_deref() != Ok("1") {
        return;
    }
    let dir = format!("{}/tests/data/wire_v2", env!("CARGO_MANIFEST_DIR"));
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    for (name, encoded) in proc_fixtures() {
        std::fs::write(v2_fixture_path(name), encoded).expect("write fixture");
    }
}

#[test]
fn every_proc_frame_bit_flip_is_a_classified_error() {
    for (name, frame) in proc_fixtures() {
        for bit in 0..frame.len() * 8 {
            let mut damaged = frame.clone();
            damaged[bit / 8] ^= 1 << (bit % 8);
            let err = match name {
                n if n.starts_with("handshake") => HandshakeFrame::decode(&damaged).err(),
                n if n.starts_with("marker") => MarkerFrame::decode(&damaged).err(),
                _ => ControlFrame::decode(&damaged).err(),
            };
            let err = err.unwrap_or_else(|| panic!("{name} bit {bit}: single-bit flip decoded"));
            assert!(
                matches!(
                    err.class(),
                    "truncated" | "bad-checksum" | "bad-magic" | "bad-payload"
                ),
                "{name} bit {bit}: unclassified error {err:?}"
            );
        }
    }
}

/// The checkpoint-safety sweep: a worker commits a cut (durable save +
/// ack) only after `MarkerFrame::decode` returns `Ok`. Flip every bit
/// of a marker frame — including the epoch and high-water fields the
/// cut would be keyed by — and decode must refuse every time. No
/// damaged marker ever commits a cut, at any offset.
#[test]
fn a_damaged_marker_never_commits_a_cut() {
    let frames = [
        MarkerFrame {
            epoch: 9,
            high_water: Some(123_456),
        },
        MarkerFrame {
            epoch: u64::MAX,
            high_water: Some(u64::MAX),
        },
        MarkerFrame {
            epoch: 0,
            high_water: None,
        },
    ];
    for marker in frames {
        let frame = marker.encode();
        for bit in 0..frame.len() * 8 {
            let mut damaged = frame.clone();
            damaged[bit / 8] ^= 1 << (bit % 8);
            assert!(
                MarkerFrame::decode(&damaged).is_err(),
                "epoch {} bit {bit}: a damaged marker decoded — this could commit a wrong cut",
                marker.epoch
            );
        }
        for cut in 0..frame.len() {
            assert!(
                MarkerFrame::decode(&frame[..cut]).is_err(),
                "epoch {} cut {cut}: a truncated marker decoded",
                marker.epoch
            );
        }
    }
}

/// Seeded multi-bit corruption fuzz over all process-group frames.
/// `WIRE_FUZZ_BUDGET` scales the iteration count (the nightly sweep
/// sets it to run far longer than the default PR-gate budget).
#[test]
fn multi_bit_fuzz_over_proc_frames_never_misdecodes() {
    let budget: u64 = std::env::var("WIRE_FUZZ_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let fixtures = proc_fixtures();
    for round in 0..budget {
        let (name, frame) = &fixtures[(splitmix(round) % fixtures.len() as u64) as usize];
        let mut damaged = frame.clone();
        let flips = 1 + splitmix(round ^ 0xF1) % 8;
        for f in 0..flips {
            let bit = (splitmix(round ^ (f << 32)) % (frame.len() as u64 * 8)) as usize;
            damaged[bit / 8] ^= 1 << (bit % 8);
        }
        if damaged == *frame {
            continue; // flips cancelled out
        }
        // Damage must surface as an error. (A checksum collision that
        // decoded would re-encode to the damaged bytes, never to the
        // original frame — but with the envelope checksum none of
        // these seeded corruptions may decode at all.)
        let decoded = match *name {
            n if n.starts_with("handshake") => HandshakeFrame::decode(&damaged).is_ok(),
            n if n.starts_with("marker") => MarkerFrame::decode(&damaged).is_ok(),
            _ => ControlFrame::decode(&damaged).is_ok(),
        };
        assert!(!decoded, "{name} round {round}: corrupted frame decoded");
    }
}
