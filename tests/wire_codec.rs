//! Conformance and corruption-fuzz suite for the byte-level wire codec
//! (`twitter::wire`).
//!
//! Three layers of guarantee, each pinned deterministically (seeded
//! SplitMix64 streams, no time or RNG state):
//!
//! 1. **Round-trip** — thousands of generated tweets (adversarial text
//!    included: empty, multi-byte UTF-8, the magic string embedded in
//!    the payload, NaN-patterned geo bits) survive encode → decode
//!    bit-exactly, alone and concatenated through a [`FrameReader`].
//! 2. **Corruption sweep** — every single-bit flip and every truncation
//!    point of reference frames yields a *classified* error or a clean
//!    resync; no damage ever decodes to a wrong tweet or panics.
//! 3. **Golden vectors** — `tests/data/wire_v1/*.dpwf` pin the encoder
//!    byte for byte, so a layout change cannot land silently. Re-run
//!    with `REGEN_WIRE_FIXTURES=1` to regenerate after an intentional
//!    (version-bumped) change.

use donorpulse::twitter::wire::{
    FrameError, FrameReader, TweetFrame, HEADER_LEN, MAGIC, TRAILER_LEN,
};
use donorpulse::twitter::{SimInstant, Tweet, TweetId, UserId};
use std::collections::BTreeSet;

/// SplitMix64 finalizer — the repo-wide seeded stream.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Text fragments chosen to stress the codec: multi-byte UTF-8, the
/// frame magic inside a payload, and the empty string.
const FRAGMENTS: &[&str] = &[
    "kidney",
    "liver",
    "heart",
    "lungs",
    "pancreas",
    "intestine",
    "organ donor",
    "transplant list",
    "❤",
    "DPWF",
    "register today",
    "años de espera",
    "посвящение",
    "",
];

/// A deterministic tweet from a seed and an index. Geo coordinates are
/// raw bit patterns (including NaN payloads) in one arm to prove the
/// codec is bit-transparent, plausible values in another.
fn seeded_tweet(seed: u64, i: u64) -> Tweet {
    let z0 = splitmix(seed ^ i);
    let z1 = splitmix(z0);
    let z2 = splitmix(z1);
    let mut text = String::new();
    for k in 0..(z0 % 6) {
        let frag = FRAGMENTS[(splitmix(z0 ^ k) % FRAGMENTS.len() as u64) as usize];
        if !text.is_empty() && !frag.is_empty() {
            text.push(' ');
        }
        text.push_str(frag);
    }
    let geo = match z1 % 4 {
        0 => None,
        1 => Some((f64::from_bits(z1), f64::from_bits(z2))),
        _ => Some((
            (z1 % 180) as f64 - 90.0 + 0.25,
            (z2 % 360) as f64 - 180.0 + 0.5,
        )),
    };
    Tweet {
        id: TweetId(i),
        user: UserId(z0 % 10_000),
        created_at: SimInstant(z2),
        text,
        geo,
    }
}

/// Field-wise equality with geo compared as raw bits (NaN-safe).
fn assert_tweet_eq(a: &Tweet, b: &Tweet, label: &str) {
    assert_eq!(a.id, b.id, "{label}: id");
    assert_eq!(a.user, b.user, "{label}: user");
    assert_eq!(a.created_at, b.created_at, "{label}: created_at");
    assert_eq!(a.text, b.text, "{label}: text");
    assert_eq!(
        a.geo.map(|(x, y)| (x.to_bits(), y.to_bits())),
        b.geo.map(|(x, y)| (x.to_bits(), y.to_bits())),
        "{label}: geo"
    );
}

#[test]
fn thousands_of_seeded_tweets_round_trip() {
    const N: u64 = 5_000;
    for i in 0..N {
        let t = seeded_tweet(0x51EE_D, i);
        let frame = TweetFrame::encode(&t);
        let back = TweetFrame::decode(&frame).expect("intact frame must decode");
        assert_tweet_eq(&back, &t, "strict round-trip");
    }
}

#[test]
fn concatenated_frames_read_back_in_order() {
    const N: u64 = 2_000;
    let tweets: Vec<Tweet> = (0..N).map(|i| seeded_tweet(0xCAFE, i)).collect();
    let mut buf = Vec::new();
    for t in &tweets {
        buf.extend_from_slice(&TweetFrame::encode(t));
    }
    let mut reader = FrameReader::new(&buf);
    let mut n = 0usize;
    for item in reader.by_ref() {
        let got = item.expect("clean stream has no errors");
        assert_tweet_eq(&got, &tweets[n], "stream round-trip");
        n += 1;
    }
    assert_eq!(n, tweets.len());
    assert_eq!(reader.resyncs(), 0);
    assert_eq!(reader.bytes_skipped(), 0);
}

/// The reference frames for the corruption sweeps: one of each shape
/// (no geo, geo, magic-in-text, empty text).
fn reference_tweets() -> Vec<Tweet> {
    vec![
        Tweet {
            id: TweetId(1),
            user: UserId(2),
            created_at: SimInstant(3),
            text: "organ donor".to_string(),
            geo: None,
        },
        Tweet {
            id: TweetId(0xDEAD_BEEF),
            user: UserId(0x0123_4567_89AB_CDEF),
            created_at: SimInstant(86_400_000),
            text: "DPWF ❤ liver año".to_string(),
            geo: Some((37.6872, -97.3301)),
        },
        Tweet {
            id: TweetId(u64::MAX),
            user: UserId(0),
            created_at: SimInstant(u64::MAX),
            text: String::new(),
            geo: Some((-0.0, 0.0)),
        },
    ]
}

#[test]
fn every_single_bit_flip_is_a_classified_error() {
    for t in reference_tweets() {
        let frame = TweetFrame::encode(&t);
        for bit in 0..frame.len() * 8 {
            let mut damaged = frame.clone();
            damaged[bit / 8] ^= 1 << (bit % 8);
            let err = TweetFrame::decode(&damaged)
                .expect_err("a single-bit flip must never decode");
            // Every failure carries a stable class label.
            assert!(
                matches!(
                    err.class(),
                    "truncated" | "bad-checksum" | "bad-magic" | "bad-payload"
                ),
                "bit {bit}: unclassified error {err:?}"
            );
        }
    }
}

#[test]
fn every_truncation_point_is_a_classified_error() {
    for t in reference_tweets() {
        let frame = TweetFrame::encode(&t);
        for cut in 0..frame.len() {
            let err = TweetFrame::decode(&frame[..cut])
                .expect_err("a truncated frame must never decode");
            assert!(
                matches!(err, FrameError::Truncated { .. }),
                "cut {cut} gave {err:?}, not Truncated"
            );
        }
    }
}

#[test]
fn bit_flip_sweep_over_a_stream_never_yields_a_wrong_tweet() {
    let tweets = reference_tweets();
    let frames: Vec<Vec<u8>> = tweets.iter().map(TweetFrame::encode).collect();
    let originals: BTreeSet<Vec<u8>> = frames.iter().cloned().collect();
    let clean: Vec<u8> = frames.concat();
    for bit in 0..clean.len() * 8 {
        let mut buf = clean.clone();
        buf[bit / 8] ^= 1 << (bit % 8);
        let mut decoded = 0usize;
        let mut errors = 0usize;
        for item in FrameReader::new(&buf) {
            match item {
                Ok(tweet) => {
                    assert!(
                        originals.contains(&TweetFrame::encode(&tweet)),
                        "bit {bit} decoded a wrong tweet: {tweet:?}"
                    );
                    decoded += 1;
                }
                Err(_) => errors += 1,
            }
        }
        // The flip provably kills exactly the frame it lands in; the
        // reader must resynchronize and recover the other two.
        assert_eq!(decoded, tweets.len() - 1, "bit {bit}: wrong recovery count");
        assert!(errors >= 1, "bit {bit}: damage went unreported");
    }
}

#[test]
fn truncation_sweep_over_a_stream_never_yields_a_wrong_tweet() {
    let tweets = reference_tweets();
    let frames: Vec<Vec<u8>> = tweets.iter().map(TweetFrame::encode).collect();
    let originals: BTreeSet<Vec<u8>> = frames.iter().cloned().collect();
    let clean: Vec<u8> = frames.concat();
    // Frame end offsets, for counting how many frames a cut preserves.
    let mut ends = Vec::new();
    let mut acc = 0usize;
    for f in &frames {
        acc += f.len();
        ends.push(acc);
    }
    for cut in 0..clean.len() {
        let buf = &clean[..cut];
        let whole = ends.iter().filter(|&&e| e <= cut).count();
        let mut decoded = 0usize;
        for item in FrameReader::new(buf) {
            if let Ok(tweet) = item {
                assert!(
                    originals.contains(&TweetFrame::encode(&tweet)),
                    "cut {cut} decoded a wrong tweet: {tweet:?}"
                );
                decoded += 1;
            }
        }
        assert_eq!(
            decoded, whole,
            "cut {cut} must decode exactly the frames it wholly contains"
        );
    }
}

#[test]
fn header_constants_are_the_documented_layout() {
    // The layout diagram in the module docs and docs/ROBUSTNESS.md is
    // load-bearing; pin the numbers it quotes.
    assert_eq!(&MAGIC, b"DPWF");
    assert_eq!(HEADER_LEN, 11);
    assert_eq!(TRAILER_LEN, 8);
    let frame = TweetFrame::encode(&reference_tweets()[0]);
    assert_eq!(&frame[..4], b"DPWF");
    assert_eq!(frame[4], 3, "kind byte");
    assert_eq!(u16::from_le_bytes([frame[5], frame[6]]), 1, "version");
}

/// Fixture names paired with the reference tweets, in order.
fn fixture_names() -> [&'static str; 3] {
    ["plain", "unicode_magic", "empty_text_max_id"]
}

fn fixture_path(name: &str) -> String {
    format!(
        "{}/tests/data/wire_v1/{name}.dpwf",
        env!("CARGO_MANIFEST_DIR")
    )
}

#[test]
fn golden_vectors_pin_the_encoder_byte_for_byte() {
    for (name, tweet) in fixture_names().iter().zip(reference_tweets()) {
        let path = fixture_path(name);
        let golden = std::fs::read(&path).unwrap_or_else(|e| {
            panic!("missing golden vector {path}: {e} (REGEN_WIRE_FIXTURES=1 regenerates)")
        });
        let encoded = TweetFrame::encode(&tweet);
        assert_eq!(
            encoded, golden,
            "{name}: encoder output drifted from the v1 golden vector — \
             a layout change needs a wire version bump, not a fixture refresh"
        );
        let back = TweetFrame::decode(&golden).expect("golden vector must decode");
        assert_tweet_eq(&back, &tweet, name);
    }
}

/// Rewrites the golden vectors from the current encoder. A no-op
/// unless `REGEN_WIRE_FIXTURES=1` is set — regenerating must be a
/// deliberate act that accompanies a wire version bump.
#[test]
fn regenerate_golden_vectors() {
    if std::env::var("REGEN_WIRE_FIXTURES").as_deref() != Ok("1") {
        return;
    }
    let dir = format!("{}/tests/data/wire_v1", env!("CARGO_MANIFEST_DIR"));
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    for (name, tweet) in fixture_names().iter().zip(reference_tweets()) {
        std::fs::write(fixture_path(name), TweetFrame::encode(&tweet)).expect("write fixture");
    }
}
