//! Null-control integration test: with NO planted anomalies, the
//! analysis machinery must report (approximately) nothing — the
//! falsification check that separates real signal detection from
//! pattern-matching on noise.

use donorpulse::core::pipeline::{Pipeline, PipelineConfig, PipelineRun};
use donorpulse::core::relative_risk::permutation;
use donorpulse::prelude::*;
use std::sync::OnceLock;

/// A 10%-scale run with every state anomaly removed (organ popularity,
/// archetypes and activity untouched). Deterministic in the seed.
fn null_run() -> &'static PipelineRun {
    static RUN: OnceLock<PipelineRun> = OnceLock::new();
    RUN.get_or_init(|| {
        let mut config = PipelineConfig::paper_scaled(0.1);
        config.generator.seed = 0x0;
        config.generator.state_organ_boost.clear();
        config.run_user_clustering = false;
        Pipeline::new().run(config).expect("pipeline")
    })
}

#[test]
fn global_chi_square_quiet_under_null() {
    // With geography broken by construction, the state x organ table
    // should not deviate from independence.
    let chi = null_run().risk.global_independence_test().unwrap();
    assert!(
        !chi.significant_at(0.001),
        "null corpus flagged dependent: p = {}",
        chi.p_value
    );
    assert!(chi.cramers_v < 0.1, "V = {}", chi.cramers_v);
}

#[test]
fn uncorrected_highlights_stay_at_noise_level() {
    // 52 states x 6 organs at a one-sided ~2.5% rate -> expect ~8 false
    // highlights; anything far beyond that indicates a biased estimator.
    let r = null_run();
    let highlighted: usize = r.risk.highlighted().values().map(Vec::len).sum();
    assert!(highlighted <= 20, "too many null highlights: {highlighted}");
}

#[test]
fn permutation_correction_clears_the_null() {
    // The family-wise permutation correction should remove essentially
    // every highlight on a null corpus.
    let r = null_run();
    let adjusted = permutation::adjust(&r.attention, &r.user_states, 0.05, 40, 11).unwrap();
    assert!(
        adjusted.surviving.len() <= 1,
        "null survivors: {:?}",
        adjusted.surviving
    );
    // …while at least flagging that the uncorrected rule fired on noise.
    assert!(
        adjusted.surviving.len() <= adjusted.dropped.len() + 1,
        "dropped {:?}",
        adjusted.dropped
    );
}

#[test]
fn organ_popularity_survives_without_anomalies() {
    // Removing geographic anomalies must NOT destroy the global organ
    // popularity order (Fig. 2a's signal is independent of Fig. 5's).
    let r = null_run();
    let hist = r.attention.users_per_organ();
    let counts: Vec<u64> = Organ::ALL.iter().map(|o| hist.count(o.name())).collect();
    for pair in counts.windows(2) {
        assert!(pair[0] > pair[1], "popularity order violated: {counts:?}");
    }
}

#[test]
fn state_signatures_become_homogeneous() {
    // Without anomalies every state's signature is a noisy copy of the
    // national mixture: the largest pairwise Bhattacharyya distance
    // should be small compared to the planted-run zones.
    let r = null_run();
    let max_d = r.state_clusters.distances.max();
    assert!(
        max_d < 0.40,
        "null corpus still has distant states: {max_d}"
    );
}
