//! Integration tests for multi-campaign sensing (`core::campaign`).
//!
//! The headline invariant, the same currency `scripts/verify.sh` trades
//! in: adding extra campaigns to a run must leave the primary
//! campaign's artifacts **byte-identical** to the single-campaign run —
//! clean, under recoverable faults, and across a kill/resume cycle.
//! Extra campaigns are additive tenants, never perturbations.
//!
//! The wire side is pinned the same way as the tweet codec: the
//! campaign-extended checkpoint layout (version 3) round-trips its
//! per-campaign sections, degrades to the legacy version-2 bytes for a
//! default single-campaign run, and is held byte-for-byte by golden
//! vectors under `tests/data/checkpoint_v3/` (regenerate deliberately
//! with `REGEN_WIRE_FIXTURES=1`, alongside a version bump).

use std::sync::Arc;

use donorpulse::core::campaign::CampaignSet;
use donorpulse::core::incremental::{IncrementalSensor, SensorExport};
use donorpulse::core::shard::{run_sharded_stream, ShardConfig, ShardServices};
use donorpulse::core::stream_consumer::{run_faulted_stream, StreamPipelineConfig};
use donorpulse::core::{CampaignSection, MemCheckpointStore, SensorCheckpoint};
use donorpulse::geo::{FlakyConfig, FlakyGeocoder, Geocoder};
use donorpulse::obs::MetricsRegistry;
use donorpulse::prelude::*;
use donorpulse::twitter::fault::FaultConfig;
use donorpulse::twitter::{SimInstant, Tweet, TweetId, UserId};

const SEED: u64 = 0x5AA4D;

/// The same second tenant `examples/campaigns.toml` ships: real traffic
/// exists for it in the simulated chatter ("blood donation drive…",
/// "plasma donor appointment…"), so its sensor is never trivially
/// empty.
const MANIFEST: &str = r#"
[[campaign]]
name = "organ-donation"

[[campaign]]
name = "blood-drive"
context = ["donate", "donated", "donation", "donations", "donor", "donors"]
category.blood = ["blood"]
category.plasma = ["plasma"]
"#;

fn two_campaigns() -> Arc<CampaignSet> {
    Arc::new(CampaignSet::parse_manifest(MANIFEST).expect("manifest parses"))
}

fn sim(scale: f64) -> TwitterSimulation {
    let mut config = GeneratorConfig::paper_scaled(scale);
    config.seed = SEED;
    TwitterSimulation::generate(config).expect("sim")
}

fn stream_config(campaigns: Arc<CampaignSet>) -> StreamPipelineConfig {
    StreamPipelineConfig {
        metrics: MetricsRegistry::enabled(),
        campaigns,
        ..Default::default()
    }
}

fn shard_config(shards: usize, campaigns: Arc<CampaignSet>) -> ShardConfig {
    ShardConfig {
        shards,
        stream: stream_config(campaigns),
        ..Default::default()
    }
}

/// Bitwise snapshot equality between two sensors, plus the export
/// fingerprint — the exact value the serving layer uses as its ETag.
fn assert_sensors_equal(a: &IncrementalSensor<'_>, b: &IncrementalSensor<'_>, label: &str) {
    assert_eq!(a.tweets_seen(), b.tweets_seen(), "{label}: tweet count");
    assert_eq!(a.user_states(), b.user_states(), "{label}: user states");
    assert_eq!(a.corpus().tweets(), b.corpus().tweets(), "{label}: corpus");
    assert_eq!(
        a.export().fingerprint(),
        b.export().fingerprint(),
        "{label}: export fingerprint"
    );
}

#[test]
fn extra_campaign_leaves_the_primary_byte_identical_clean() {
    let sim = sim(0.01);
    let geocoder = Geocoder::new();
    let single = run_faulted_stream(
        &sim,
        &geocoder,
        &geocoder,
        FaultConfig::none(),
        stream_config(Arc::new(CampaignSet::default_single())),
    );
    assert!(single.extra_sensors.is_empty());

    let campaigns = two_campaigns();
    let multi = run_faulted_stream(
        &sim,
        &geocoder,
        &geocoder,
        FaultConfig::none(),
        stream_config(Arc::clone(&campaigns)),
    );
    assert_sensors_equal(&multi.sensor, &single.sensor, "multi primary vs single");

    // The second tenant saw real traffic and its sensor holds exactly
    // the tweets its own matcher accepts from the full stream.
    assert_eq!(multi.extra_sensors.len(), 1);
    let blood = &multi.extra_sensors[0];
    assert!(blood.tweets_seen() > 0, "blood-drive sensor saw nothing");
    let matcher = campaigns.extras()[0].clone();
    let mut reference = IncrementalSensor::with_extractor(
        &geocoder,
        |id: UserId| {
            sim.users()
                .get(id.0 as usize)
                .map(|u| u.profile_location.clone())
        },
        matcher.extractor().clone(),
    );
    for tweet in sim.stream() {
        if matcher.matches(&tweet.text) {
            reference.ingest(&tweet);
        }
    }
    assert_sensors_equal(blood, &reference, "blood-drive vs direct scan");
}

#[test]
fn extra_campaign_leaves_the_primary_byte_identical_under_recoverable_faults() {
    let sim = sim(0.01);
    let geocoder = Geocoder::new();
    // Both sides face the same fault schedule and the same flaky
    // geocoding service; the campaign-class admission gate keeps the
    // service's call index schedule aligned between them.
    let service = FlakyGeocoder::new(&geocoder, FlakyConfig::flaky(SEED));
    let single = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&service),
        FaultConfig::recoverable(SEED),
        None,
        shard_config(2, Arc::new(CampaignSet::default_single())),
    )
    .expect("single-campaign run");
    assert!(single.fault_stats.disconnects > 0, "faults never fired");
    let single_sensor = single.sensor.expect("merged sensor");

    let service2 = FlakyGeocoder::new(&geocoder, FlakyConfig::flaky(SEED));
    let multi = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&service2),
        FaultConfig::recoverable(SEED),
        None,
        shard_config(2, two_campaigns()),
    )
    .expect("two-campaign run");
    let multi_sensor = multi.sensor.expect("merged sensor");
    assert_sensors_equal(
        &multi_sensor,
        &single_sensor,
        "faulted multi primary vs single",
    );
    assert_eq!(multi.extra_sensors.len(), 1);
    assert!(multi.extra_sensors[0].tweets_seen() > 0);
}

#[test]
fn killed_multi_campaign_group_resumes_to_the_uninterrupted_artifacts() {
    let sim = sim(0.01);
    let geocoder = Geocoder::new();
    let faults = FaultConfig::recoverable(SEED);
    let campaigns = two_campaigns();

    // Uninterrupted references: the single-campaign run (the byte
    // identity currency) and the multi-campaign run (for the extra
    // tenant's state).
    let single = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        faults.clone(),
        None,
        shard_config(2, Arc::new(CampaignSet::default_single())),
    )
    .expect("single run");
    let single_sensor = single.sensor.expect("single sensor");

    let mut config = shard_config(2, Arc::clone(&campaigns));
    config.checkpoint_every = 200;
    let uninterrupted = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        faults.clone(),
        Some(&MemCheckpointStore::new()),
        config.clone(),
    )
    .expect("uninterrupted run");
    let uninterrupted_extra = &uninterrupted.extra_sensors[0];

    // Crash mid-run; the per-campaign checkpoint sections are all the
    // extra tenant leaves behind.
    let store = MemCheckpointStore::new();
    let mut killed_config = config.clone();
    killed_config.kill_after = Some(500);
    let killed = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        faults.clone(),
        Some(&store),
        killed_config,
    )
    .expect("killed run");
    assert!(killed.killed);
    assert!(killed.last_epoch >= 1, "crash happened before any epoch");

    let mut resume_config = config;
    resume_config.resume = true;
    let resumed = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        faults,
        Some(&store),
        resume_config,
    )
    .expect("resumed run");
    assert!(resumed.resumed_from_epoch.is_some());
    let sensor = resumed.sensor.expect("resumed sensor");
    assert_sensors_equal(&sensor, &single_sensor, "resumed primary vs single");
    assert_eq!(resumed.extra_sensors.len(), 1);
    assert_sensors_equal(
        &resumed.extra_sensors[0],
        uninterrupted_extra,
        "resumed extra vs uninterrupted",
    );
}

#[test]
fn resume_across_campaign_rosters_is_refused() {
    let sim = sim(0.004);
    let geocoder = Geocoder::new();
    let store = MemCheckpointStore::new();
    let mut config = shard_config(2, two_campaigns());
    config.checkpoint_every = 200;
    config.kill_after = Some(400);
    run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        FaultConfig::none(),
        Some(&store),
        config,
    )
    .expect("killed run");

    // Same store, default single-campaign roster: resuming would
    // silently drop the blood-drive tenant's state.
    let mut wrong = shard_config(2, Arc::new(CampaignSet::default_single()));
    wrong.resume = true;
    let err = match run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        FaultConfig::none(),
        Some(&store),
        wrong,
    ) {
        Ok(_) => panic!("resume must refuse a roster change"),
        Err(err) => err,
    };
    assert!(err.to_string().contains("campaigns"), "{err}");
}

// ---------------------------------------------------------------------
// Checkpoint wire format: per-campaign sections.
// ---------------------------------------------------------------------

/// A small deterministic sensor: fixed tweets, fixed profile strings,
/// the repo's deterministic geocoder — every field of the resulting
/// export is a pure function of this source, so checkpoints built from
/// it can be pinned as golden vectors.
fn deterministic_export(geocoder: &Geocoder, texts: &[(u64, u64, &str)]) -> SensorExport {
    let mut sensor = IncrementalSensor::new(geocoder, |id: UserId| {
        Some(match id.0 % 3 {
            0 => "Boston, MA".to_string(),
            1 => "Seattle, WA".to_string(),
            _ => "Springfield".to_string(),
        })
    });
    for &(id, user, text) in texts {
        sensor.ingest(&Tweet {
            id: TweetId(id),
            user: UserId(user),
            created_at: SimInstant(id * 1000),
            text: text.to_string(),
            geo: None,
        });
    }
    sensor.export()
}

fn reference_checkpoint(geocoder: &Geocoder) -> SensorCheckpoint {
    let primary = deterministic_export(
        geocoder,
        &[
            (1, 0, "register as an organ donor today"),
            (2, 1, "kidney transplant waitlist keeps growing"),
            (3, 0, "signed up to donate my liver, heart and lungs"),
        ],
    );
    let blood = deterministic_export(
        geocoder,
        &[
            (4, 2, "blood donation drive at the gym tomorrow"),
            (5, 1, "plasma donor appointment booked for friday"),
        ],
    );
    SensorCheckpoint {
        shard_id: 1,
        shard_count: 2,
        epoch: 7,
        router_high_water: Some(TweetId(5)),
        export: primary,
        parked: vec![Tweet {
            id: TweetId(9),
            user: UserId(3),
            created_at: SimInstant(9000),
            text: "organ donor registration pending geocode".to_string(),
            geo: Some((42.36, -71.06)),
        }],
        campaign: "organ-donation".to_string(),
        extra_campaigns: vec![CampaignSection {
            name: "blood-drive".to_string(),
            export: blood,
        }],
    }
}

#[test]
fn per_campaign_checkpoint_sections_round_trip() {
    let geocoder = Geocoder::new();
    let ckpt = reference_checkpoint(&geocoder);
    let bytes = ckpt.encode();
    // A checkpoint with extra campaigns must carry the extended layout.
    assert_eq!(
        u16::from_le_bytes([bytes[5], bytes[6]]),
        3,
        "campaign checkpoint must encode as version 3"
    );
    let back = SensorCheckpoint::decode(&bytes).expect("decode");
    assert_eq!(back.shard_id, ckpt.shard_id);
    assert_eq!(back.shard_count, ckpt.shard_count);
    assert_eq!(back.epoch, ckpt.epoch);
    assert_eq!(back.router_high_water, ckpt.router_high_water);
    assert_eq!(back.campaign, "organ-donation");
    assert_eq!(back.campaign_names(), vec!["organ-donation", "blood-drive"]);
    assert_eq!(back.extra_campaigns.len(), 1);
    assert_eq!(back.extra_campaigns[0].name, "blood-drive");
    assert_eq!(
        back.export.fingerprint(),
        ckpt.export.fingerprint(),
        "primary section"
    );
    assert_eq!(
        back.extra_campaigns[0].export.fingerprint(),
        ckpt.extra_campaigns[0].export.fingerprint(),
        "blood-drive section"
    );
    assert_eq!(back.parked.len(), 1);
    // Re-encoding is canonical.
    assert_eq!(back.encode(), bytes);
}

#[test]
fn default_campaign_checkpoints_keep_the_legacy_version_2_bytes() {
    let geocoder = Geocoder::new();
    let mut ckpt = reference_checkpoint(&geocoder);
    ckpt.campaign = donorpulse::core::DEFAULT_CAMPAIGN.to_string();
    ckpt.extra_campaigns.clear();
    let bytes = ckpt.encode();
    assert_eq!(
        u16::from_le_bytes([bytes[5], bytes[6]]),
        2,
        "a default single-campaign checkpoint must stay version 2 — \
         byte-identical to pre-campaign builds"
    );
    let back = SensorCheckpoint::decode(&bytes).expect("decode v2");
    assert_eq!(back.campaign, donorpulse::core::DEFAULT_CAMPAIGN);
    assert!(back.extra_campaigns.is_empty());
    assert_eq!(back.export.fingerprint(), ckpt.export.fingerprint());
}

// ---------------------------------------------------------------------
// Golden vectors: the extended checkpoint frame, byte for byte.
// ---------------------------------------------------------------------

fn fixture_path(name: &str) -> String {
    format!(
        "{}/tests/data/checkpoint_v3/{name}",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn checkpoint_fixture_path() -> String {
    fixture_path("two_campaign.ckpt")
}

/// The supervisor wire's worker-report frame carrying the extended
/// checkpoint: campaign sections ride the process group inside
/// `ControlFrame::Report`'s payload, so the composed frame is pinned
/// alongside the bare checkpoint.
fn report_frame_fixture_path() -> String {
    fixture_path("report_frame.dpwf")
}

fn reference_report_frame(geocoder: &Geocoder) -> Vec<u8> {
    donorpulse::twitter::wire::ControlFrame::Report {
        payload: reference_checkpoint(geocoder).encode(),
    }
    .encode()
}

#[test]
fn golden_vector_pins_the_campaign_checkpoint_byte_for_byte() {
    let geocoder = Geocoder::new();
    let path = checkpoint_fixture_path();
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!("missing golden vector {path}: {e} (REGEN_WIRE_FIXTURES=1 regenerates)")
    });
    let encoded = reference_checkpoint(&geocoder).encode();
    assert_eq!(
        encoded, golden,
        "campaign checkpoint output drifted from the version-3 golden \
         vector — a layout change needs a wire version bump, not a \
         fixture refresh"
    );
    let back = SensorCheckpoint::decode(&golden).expect("golden vector must decode");
    assert_eq!(back.campaign_names(), vec!["organ-donation", "blood-drive"]);
}

#[test]
fn golden_vector_pins_the_campaign_report_frame_byte_for_byte() {
    use donorpulse::twitter::wire::ControlFrame;
    let geocoder = Geocoder::new();
    let path = report_frame_fixture_path();
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!("missing golden vector {path}: {e} (REGEN_WIRE_FIXTURES=1 regenerates)")
    });
    assert_eq!(
        reference_report_frame(&geocoder),
        golden,
        "worker-report frame with campaign sections drifted from the \
         golden vector — a layout change needs a version bump, not a \
         fixture refresh"
    );
    let frame = ControlFrame::decode(&golden).expect("golden report frame decodes");
    let ControlFrame::Report { payload } = frame else {
        panic!("fixture is not a report frame");
    };
    let ckpt = SensorCheckpoint::decode(&payload).expect("embedded checkpoint decodes");
    assert_eq!(ckpt.campaign_names(), vec!["organ-donation", "blood-drive"]);
}

/// Rewrites the golden vector from the current encoder. A no-op unless
/// `REGEN_WIRE_FIXTURES=1` is set — regenerating must be a deliberate
/// act that accompanies a wire version bump.
#[test]
fn regenerate_checkpoint_golden_vectors() {
    if std::env::var("REGEN_WIRE_FIXTURES").as_deref() != Ok("1") {
        return;
    }
    let geocoder = Geocoder::new();
    let path = checkpoint_fixture_path();
    let dir = std::path::Path::new(&path).parent().expect("fixture dir");
    std::fs::create_dir_all(dir).expect("create fixture dir");
    std::fs::write(&path, reference_checkpoint(&geocoder).encode()).expect("write fixture");
    std::fs::write(report_frame_fixture_path(), reference_report_frame(&geocoder))
        .expect("write report frame fixture");
}
