//! Integration tests for the fault-tolerant streaming front-half.
//!
//! The headline invariant: when every injected fault is recoverable and
//! retries are enabled, the post-stream sensor snapshot is
//! **byte-identical** to the clean batch pipeline's artifacts
//! (`f64::to_bits` equality, not approximate). Degraded modes must
//! instead *account* for what they lost: a nonzero
//! `stream_gap_tweets_total`, nonzero park-queue gauges, and a sensor
//! that still matches the clean semantics on the subset it received.

use donorpulse::core::incremental::IncrementalSensor;
use donorpulse::core::pipeline::{Pipeline, PipelineConfig, PipelineRun};
use donorpulse::core::stream_consumer::{run_faulted_stream, StreamPipelineConfig};
use donorpulse::geo::{FlakyConfig, FlakyGeocoder, Geocoder};
use donorpulse::obs::MetricsRegistry;
use donorpulse::prelude::*;
use donorpulse::twitter::fault::{FaultConfig, FaultStats};
use donorpulse::twitter::UserId;

const SEED: u64 = 0xFA117;

fn sim(scale: f64) -> TwitterSimulation {
    let mut config = GeneratorConfig::paper_scaled(scale);
    config.seed = SEED;
    TwitterSimulation::generate(config).expect("sim")
}

fn batch_on(sim: &TwitterSimulation) -> PipelineRun {
    let config = PipelineConfig {
        generator: sim.config().clone(),
        run_user_clustering: false,
        ..Default::default()
    };
    Pipeline::new().run_on(sim, config).expect("batch pipeline")
}

fn stream_config() -> StreamPipelineConfig {
    StreamPipelineConfig {
        metrics: MetricsRegistry::enabled(),
        ..Default::default()
    }
}

/// Bitwise equality for attention matrices: `to_bits`, not `==`, so a
/// drifted `-0.0` or ulp would fail loudly.
fn assert_attention_bits_equal(a: &AttentionMatrix, b: &AttentionMatrix) {
    assert_eq!(a.users(), b.users());
    for &user in a.users() {
        let ra = a.attention_of(user).expect("row");
        let rb = b.attention_of(user).expect("row");
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(rb) {
            assert_eq!(x.to_bits(), y.to_bits(), "attention drifted for {user}");
        }
    }
}

#[test]
fn recoverable_faults_reproduce_batch_artifacts_bytewise() {
    let sim = sim(0.01);
    let geocoder = Geocoder::new();
    // Disconnects, duplicates, reorders, transient corruption on the
    // stream; transient errors, timeouts and latency spikes on the
    // geocoding service. All recoverable within the retry budgets.
    let service = FlakyGeocoder::new(&geocoder, FlakyConfig::flaky(SEED));
    let run = run_faulted_stream(
        &sim,
        &geocoder,
        &service,
        FaultConfig::recoverable(SEED),
        stream_config(),
    );

    // The schedule must actually have exercised the fault machinery.
    let stats = run.fault_stats;
    assert!(stats.disconnects > 0, "no disconnects fired: {stats:?}");
    assert!(stats.duplicates_injected > 0, "no duplicates: {stats:?}");
    assert!(stats.reordered > 0, "no reorders: {stats:?}");
    assert!(service.transient_errors() > 0, "service never failed");
    assert!(!run.source_aborted);
    assert_eq!(run.parked_at_end, 0);
    assert_eq!(run.metrics.counter("stream_gap_tweets_total"), Some(0));
    assert_eq!(run.delivered_tweets, run.expected_tweets);

    // Byte-identity against the clean batch pipeline.
    let batch = batch_on(&sim);
    assert_eq!(run.sensor.tweets_seen(), batch.collected_tweets);
    assert_eq!(run.sensor.corpus().tweets(), batch.usa.tweets());
    assert_eq!(run.sensor.user_states(), batch.user_states);
    let attention = run.sensor.attention().expect("attention");
    assert_attention_bits_equal(&attention, &batch.attention);
    let risk = run.sensor.risk_map(batch.config.alpha).expect("risk");
    assert_eq!(risk.entries.len(), batch.risk.entries.len());
    for (a, b) in risk.entries.iter().zip(&batch.risk.entries) {
        assert_eq!(
            (a.state, a.organ, a.cases_in, a.total_in),
            (b.state, b.organ, b.cases_in, b.total_in)
        );
        assert_eq!(
            a.risk.map(|r| r.rr.to_bits()),
            b.risk.map(|r| r.rr.to_bits()),
            "relative risk drifted for {:?}/{:?}",
            a.state,
            a.organ
        );
    }
}

#[test]
fn lossy_faults_surface_nonzero_coverage_gap() {
    let sim = sim(0.004);
    let geocoder = Geocoder::new();
    let run = run_faulted_stream(
        &sim,
        &geocoder,
        &geocoder,
        FaultConfig::lossy(SEED),
        stream_config(),
    );
    // Reconnect gaps skip deliveries; the loss must be *accounted*, not
    // silent: the gap counter covers exactly the shortfall.
    assert!(
        run.fault_stats.skipped > 0,
        "lossy schedule skipped nothing"
    );
    let gap = run
        .metrics
        .counter("stream_gap_tweets_total")
        .expect("gap counter");
    assert!(gap > 0);
    assert!(run.delivered_tweets < run.expected_tweets);
    assert_eq!(run.delivered_tweets + gap, run.expected_tweets);
}

#[test]
fn finite_geocoder_outage_parks_then_recovers_bytewise() {
    let sim = sim(0.004);
    let geocoder = Geocoder::new();
    // The service hard-fails every call in a 600-call window: tweets
    // park, then drain in arrival order once it recovers.
    let service = FlakyGeocoder::new(&geocoder, FlakyConfig::outage(SEED, 40, 600));
    let run = run_faulted_stream(
        &sim,
        &geocoder,
        &service,
        FaultConfig::none(),
        stream_config(),
    );
    let peak = run
        .metrics
        .gauge("geo_parked_peak_depth")
        .expect("peak gauge");
    assert!(peak > 0, "outage never parked anything");
    assert_eq!(run.parked_at_end, 0, "park queue failed to drain");
    assert_eq!(run.metrics.counter("stream_gap_tweets_total"), Some(0));
    assert_eq!(run.delivered_tweets, run.expected_tweets);

    // Parking must be invisible in the artifacts.
    let batch = batch_on(&sim);
    assert_eq!(run.sensor.corpus().tweets(), batch.usa.tweets());
    let attention = run.sensor.attention().expect("attention");
    assert_attention_bits_equal(&attention, &batch.attention);
}

#[test]
fn unrecoverable_outage_degrades_gracefully_with_parked_gauges() {
    let sim = sim(0.004);
    let geocoder = Geocoder::new();
    // Service goes down after 120 calls and never comes back.
    let service = FlakyGeocoder::new(&geocoder, FlakyConfig::outage(SEED, 120, u64::MAX));
    let run = run_faulted_stream(
        &sim,
        &geocoder,
        &service,
        FaultConfig::none(),
        stream_config(),
    );
    assert!(run.parked_at_end > 0, "nothing parked under endless outage");
    let depth = run.metrics.gauge("geo_parked_depth").expect("depth gauge");
    assert_eq!(depth, run.parked_at_end);
    let gap = run
        .metrics
        .counter("stream_gap_tweets_total")
        .expect("gap counter");
    assert!(gap > 0, "unresolved tweets must count as coverage gap");
    assert_eq!(run.delivered_tweets + gap, run.expected_tweets);
}

/// SplitMix64 — the test's own config generator, so the sweep needs no
/// fuzzing dependency and every failure names a replayable config.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Property-style sweep: 64 seeded fault schedules, every field drawn
/// from a *recoverable* bound (full backfill, transient corruption,
/// connect failures far below the retry budget). For each config the
/// consumer must reconstruct the clean sensor **bytewise** — the
/// invariant of `recoverable_faults_reproduce_batch_artifacts_bytewise`
/// holds across the whole config region, not just the one curated
/// schedule. Failures print the offending `FaultConfig`, which replays
/// deterministically.
#[test]
fn fuzz_recoverable_schedules_reproduce_clean_sensor_bytewise() {
    let sim = sim(0.004);
    let geocoder = Geocoder::new();

    // Clean reference, computed once: the filtered stream fed straight
    // into a sensor.
    let mut clean = IncrementalSensor::new(&geocoder, |id: UserId| {
        sim.users()
            .get(id.0 as usize)
            .map(|u| u.profile_location.clone())
    });
    for tweet in sim.stream().with_filter(Box::new(KeywordQuery::paper())) {
        clean.ingest(&tweet);
    }
    let clean_attention = clean.attention().expect("clean attention");

    let mut state = 0xD00D1E5EED_u64;
    let mut draw = |bound: u64| {
        state = state.wrapping_add(1);
        splitmix64(state) % bound
    };

    let mut total = FaultStats::default();
    for case in 0..64u32 {
        let config = FaultConfig {
            seed: splitmix64(u64::from(case) ^ 0xF022_5EED),
            disconnect_rate: draw(600) as f64 / 100_000.0, // ≤ 0.6%
            // ≥ 2: an adjacent swap advances the fresh frontier two
            // slots past the record it displaced, so if that record was
            // also corrupted, the recovery reconnect can only replay it
            // when the backfill window reaches back ≥ 2. A 1-slot
            // window is *not* in the recoverable region — the sweep
            // found that boundary on its first run.
            replay_window: 2 + draw(7) as usize, // 2..=8
            skip_on_reconnect: 0,                // full backfill
            duplicate_rate: draw(2_500) as f64 / 100_000.0, // ≤ 2.5%
            reorder_rate: draw(2_500) as f64 / 100_000.0, // ≤ 2.5%
            corrupt_rate: draw(400) as f64 / 100_000.0, // ≤ 0.4%
            corrupt_persistent: false,           // transient only
            connect_failure_rate: draw(300) as f64 / 1_000.0, // ≤ 30%
        };
        let run = run_faulted_stream(&sim, &geocoder, &geocoder, config.clone(), stream_config());
        assert!(!run.source_aborted, "case {case} aborted: {config:?}");
        assert_eq!(run.parked_at_end, 0, "case {case} parked: {config:?}");
        assert_eq!(
            run.metrics.counter("stream_gap_tweets_total"),
            Some(0),
            "case {case} left a gap: {config:?}"
        );
        assert_eq!(
            run.delivered_tweets, run.expected_tweets,
            "case {case} lost deliveries: {config:?}"
        );
        assert_eq!(
            run.sensor.tweets_seen(),
            clean.tweets_seen(),
            "case {case} tweet count drifted: {config:?}"
        );
        assert_eq!(
            run.sensor.user_states(),
            clean.user_states(),
            "case {case} user states drifted: {config:?}"
        );
        assert_eq!(
            run.sensor.corpus().tweets(),
            clean.corpus().tweets(),
            "case {case} corpus drifted: {config:?}"
        );
        let attention = run.sensor.attention().expect("attention");
        assert_attention_bits_equal(&attention, &clean_attention);

        let s = run.fault_stats;
        total.disconnects += s.disconnects;
        total.duplicates_injected += s.duplicates_injected;
        total.reordered += s.reordered;
        total.corrupted += s.corrupted;
        total.replayed += s.replayed;
    }

    // The sweep must have actually wandered the fault space — a
    // degenerate generator that drew all-zero rates would pass the
    // identity checks vacuously.
    assert!(total.disconnects > 0, "sweep never disconnected: {total:?}");
    assert!(
        total.duplicates_injected > 0,
        "sweep never duplicated: {total:?}"
    );
    assert!(total.reordered > 0, "sweep never reordered: {total:?}");
    assert!(total.corrupted > 0, "sweep never corrupted: {total:?}");
    assert!(total.replayed > 0, "sweep never replayed: {total:?}");
}

#[test]
fn mid_outage_snapshot_matches_clean_sensor_on_delivered_subset() {
    let sim = sim(0.004);
    let geocoder = Geocoder::new();
    let service = FlakyGeocoder::new(&geocoder, FlakyConfig::outage(SEED, 120, u64::MAX));
    let run = run_faulted_stream(
        &sim,
        &geocoder,
        &service,
        FaultConfig::none(),
        stream_config(),
    );
    // Admission is FIFO and order-preserving, so the delivered subset is
    // exactly the clean stream's prefix. A sensor fed that prefix
    // directly must agree with the degraded run's snapshot bitwise.
    assert!(run.delivered_tweets > 0, "outage started too early");
    let mut clean = IncrementalSensor::new(&geocoder, |id| {
        sim.users()
            .get(id.0 as usize)
            .map(|u| u.profile_location.clone())
    });
    for tweet in sim
        .stream()
        .with_filter(Box::new(KeywordQuery::paper()))
        .take(run.delivered_tweets as usize)
    {
        clean.ingest(&tweet);
    }
    assert_eq!(run.sensor.tweets_seen(), clean.tweets_seen());
    assert_eq!(run.sensor.user_states(), clean.user_states());
    assert_eq!(run.sensor.corpus().tweets(), clean.corpus().tweets());
    let a = run.sensor.attention().expect("degraded attention");
    let b = clean.attention().expect("clean attention");
    assert_attention_bits_equal(&a, &b);
}
