//! Integration tests for the sharded consumer group (`core::shard`).
//!
//! The headline invariants:
//!
//! 1. **Merge identity** — for every shard count N, the merged sensor's
//!    snapshots are byte-identical to the single-sensor streaming run
//!    and to the clean batch pipeline (`f64::to_bits` equality).
//! 2. **Crash consistency** — kill the router mid-run, resume from the
//!    newest complete checkpoint epoch, and the finished run reproduces
//!    the uninterrupted run's snapshots exactly, without replaying the
//!    whole stream.
//! 3. **Dead letters are replayable** — everything a degraded group
//!    abandons is in the dead-letter log, in the shared wire format,
//!    and feeding it back into the merged sensor restores full clean
//!    coverage.

use donorpulse::core::incremental::IncrementalSensor;
use donorpulse::core::pipeline::{Pipeline, PipelineConfig, PipelineRun};
use donorpulse::core::shard::{run_sharded_stream, ShardConfig, ShardServices};
use donorpulse::core::stream_consumer::{
    replay_dead_letters, run_faulted_stream, StreamPipelineConfig,
};
use donorpulse::core::{
    CheckpointStore, DeadLetter, DeadLetterLog, MemCheckpointStore, SensorCheckpoint,
};
use donorpulse::geo::{FlakyConfig, FlakyGeocoder, Geocoder};
use donorpulse::obs::MetricsRegistry;
use donorpulse::prelude::*;
use donorpulse::twitter::fault::FaultConfig;
use donorpulse::twitter::UserId;

const SEED: u64 = 0x5AA4D;

fn sim(scale: f64) -> TwitterSimulation {
    let mut config = GeneratorConfig::paper_scaled(scale);
    config.seed = SEED;
    TwitterSimulation::generate(config).expect("sim")
}

fn batch_on(sim: &TwitterSimulation) -> PipelineRun {
    let config = PipelineConfig {
        generator: sim.config().clone(),
        run_user_clustering: false,
        ..Default::default()
    };
    Pipeline::new().run_on(sim, config).expect("batch pipeline")
}

fn shard_config(shards: usize) -> ShardConfig {
    ShardConfig {
        shards,
        stream: StreamPipelineConfig {
            metrics: MetricsRegistry::enabled(),
            ..Default::default()
        },
        ..Default::default()
    }
}

fn assert_attention_bits_equal(a: &AttentionMatrix, b: &AttentionMatrix) {
    assert_eq!(a.users(), b.users());
    for &user in a.users() {
        let ra = a.attention_of(user).expect("row");
        let rb = b.attention_of(user).expect("row");
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(rb) {
            assert_eq!(x.to_bits(), y.to_bits(), "attention drifted for {user}");
        }
    }
}

/// Bitwise snapshot equality between two sensors.
fn assert_sensors_equal(a: &IncrementalSensor<'_>, b: &IncrementalSensor<'_>, label: &str) {
    assert_eq!(a.tweets_seen(), b.tweets_seen(), "{label}: tweet count");
    assert_eq!(a.user_states(), b.user_states(), "{label}: user states");
    assert_eq!(a.corpus().tweets(), b.corpus().tweets(), "{label}: corpus");
    let aa = a.attention().expect("attention a");
    let ab = b.attention().expect("attention b");
    assert_attention_bits_equal(&aa, &ab);
}

#[test]
fn merge_is_byte_identical_to_batch_for_every_shard_count() {
    let sim = sim(0.01);
    let geocoder = Geocoder::new();
    let batch = batch_on(&sim);
    for shards in [1usize, 2, 4] {
        let run = run_sharded_stream(
            &sim,
            &geocoder,
            ShardServices::Shared(&geocoder),
            FaultConfig::none(),
            None,
            shard_config(shards),
        )
        .expect("sharded run");
        assert_eq!(run.shards, shards);
        assert!(!run.killed);
        assert_eq!(run.parked_at_end, 0);
        assert!(run.dead_letters.is_empty());
        assert_eq!(run.delivered_tweets, run.expected_tweets);
        // Every shard must have received work at this scale.
        assert!(
            run.shard_tweets.iter().all(|&n| n > 0),
            "idle shard at N={shards}: {:?}",
            run.shard_tweets
        );
        assert_eq!(
            run.shard_tweets.iter().sum::<u64>(),
            run.metrics
                .counter("shard_tweets_total")
                .expect("routed counter")
        );

        let sensor = run.sensor.expect("merged sensor");
        assert_eq!(sensor.tweets_seen(), batch.collected_tweets);
        assert_eq!(sensor.corpus().tweets(), batch.usa.tweets());
        assert_eq!(sensor.user_states(), batch.user_states);
        let attention = sensor.attention().expect("attention");
        assert_attention_bits_equal(&attention, &batch.attention);
    }
}

#[test]
fn sharded_run_matches_single_consumer_under_recoverable_faults() {
    let sim = sim(0.01);
    let geocoder = Geocoder::new();
    // The single-consumer run is the reference; both sides face the
    // same fault schedule and a flaky geocoding service.
    let service = FlakyGeocoder::new(&geocoder, FlakyConfig::flaky(SEED));
    let single = run_faulted_stream(
        &sim,
        &geocoder,
        &service,
        FaultConfig::recoverable(SEED),
        StreamPipelineConfig {
            metrics: MetricsRegistry::enabled(),
            ..Default::default()
        },
    );
    assert!(!single.source_aborted);
    assert_eq!(single.parked_at_end, 0);

    let service2 = FlakyGeocoder::new(&geocoder, FlakyConfig::flaky(SEED));
    let run = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&service2),
        FaultConfig::recoverable(SEED),
        None,
        shard_config(4),
    )
    .expect("sharded run");
    assert!(run.fault_stats.disconnects > 0, "faults never fired");
    assert_eq!(run.parked_at_end, 0);
    assert_eq!(run.delivered_tweets, single.delivered_tweets);
    let sensor = run.sensor.expect("merged sensor");
    assert_sensors_equal(&sensor, &single.sensor, "sharded vs single");
}

#[test]
fn kill_and_resume_reproduces_the_uninterrupted_run() {
    let sim = sim(0.01);
    let geocoder = Geocoder::new();
    let faults = FaultConfig::recoverable(SEED);

    // Uninterrupted reference, checkpointing along the way.
    let ref_store = MemCheckpointStore::new();
    let mut config = shard_config(2);
    config.checkpoint_every = 200;
    let uninterrupted = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        faults.clone(),
        Some(&ref_store),
        config.clone(),
    )
    .expect("uninterrupted run");
    assert!(uninterrupted.last_epoch >= 2, "too few epochs to test");
    let reference = uninterrupted.sensor.expect("reference sensor");

    // Crash the router mid-run. The killed run has no merged sensor —
    // its checkpoints are all it leaves behind.
    let store = MemCheckpointStore::new();
    let mut killed_config = config.clone();
    killed_config.kill_after = Some(500);
    let killed = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        faults.clone(),
        Some(&store),
        killed_config,
    )
    .expect("killed run");
    assert!(killed.killed);
    assert!(killed.sensor.is_none(), "a crashed group has no artifacts");
    assert!(killed.last_epoch >= 1, "crash happened before any epoch");

    // Resume from the newest complete epoch and finish the stream.
    let mut resume_config = config;
    resume_config.resume = true;
    let resumed = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        faults,
        Some(&store),
        resume_config,
    )
    .expect("resumed run");
    let epoch = resumed.resumed_from_epoch.expect("resume epoch");
    assert!(epoch >= 1 && epoch <= killed.last_epoch);
    assert_eq!(resumed.delivered_tweets, uninterrupted.delivered_tweets);
    // Seek-past-the-cut means essentially nothing is replayed; the
    // guard exists for the replay-window overlap, bounded by it.
    let replayed = resumed
        .metrics
        .counter("resume_replayed_total")
        .expect("replay counter");
    assert!(
        replayed <= 16,
        "resume replayed {replayed} tweets — the seek is not working"
    );
    let sensor = resumed.sensor.expect("resumed sensor");
    assert_sensors_equal(&sensor, &reference, "resumed vs uninterrupted");
}

#[test]
fn resume_with_wrong_shard_count_is_refused() {
    let sim = sim(0.004);
    let geocoder = Geocoder::new();
    let store = MemCheckpointStore::new();
    let mut config = shard_config(2);
    config.checkpoint_every = 200;
    config.kill_after = Some(400);
    run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        FaultConfig::none(),
        Some(&store),
        config,
    )
    .expect("killed run");

    // Same store, different modulus: user histories would split. (A
    // *larger* count fails even earlier — no epoch is complete across
    // shards that never existed; shrinking to 1 exercises the explicit
    // shard-count validation.)
    let mut wrong = shard_config(1);
    wrong.resume = true;
    let err = match run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        FaultConfig::none(),
        Some(&store),
        wrong,
    ) {
        Ok(_) => panic!("resume must refuse a re-shard"),
        Err(err) => err,
    };
    assert!(err.to_string().contains("re-routing"), "{err}");
}

#[test]
fn dead_letters_replay_to_full_clean_coverage() {
    let sim = sim(0.004);
    let geocoder = Geocoder::new();
    // The service dies after 120 calls and never recovers: the group
    // parks what it can, then abandons the rest into the dead-letter
    // log at end of stream.
    let service = FlakyGeocoder::new(&geocoder, FlakyConfig::outage(SEED, 120, u64::MAX));
    let run = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&service),
        FaultConfig::none(),
        None,
        shard_config(2),
    )
    .expect("degraded run");
    assert!(run.parked_at_end > 0, "outage abandoned nothing");
    assert!(!run.dead_letters.is_empty());
    let dead_metric = run
        .metrics
        .counter("dead_letter_total")
        .expect("dead counter");
    assert_eq!(dead_metric, run.dead_letters.len() as u64);

    // The log must survive its own wire format.
    let log = DeadLetterLog::decode(&run.dead_letters.encode()).expect("log roundtrip");
    assert_eq!(log.len(), run.dead_letters.len());
    // A geocoding outage abandons intact tweets, never damaged frames.
    assert!(
        log.entries()
            .iter()
            .all(|l| matches!(l, DeadLetter::Tweet(_))),
        "outage log must hold typed tweets"
    );

    // Replaying the abandoned tweets restores clean coverage bitwise.
    let mut sensor = run.sensor.expect("merged sensor");
    let report = replay_dead_letters(&mut sensor, &log);
    assert_eq!(report.tweets_replayed, log.len() as u64);
    assert_eq!(report.frames_recovered, 0);
    assert_eq!(report.frames_undecodable, 0);
    assert_eq!(
        report.duplicates, 0,
        "abandoned tweets never reached the sensor"
    );
    let mut clean = IncrementalSensor::new(&geocoder, |id: UserId| {
        sim.users()
            .get(id.0 as usize)
            .map(|u| u.profile_location.clone())
    });
    for tweet in sim.stream().with_filter(Box::new(KeywordQuery::paper())) {
        clean.ingest(&tweet);
    }
    assert_sensors_equal(&sensor, &clean, "replayed vs clean");
}

#[test]
fn dead_lettered_frames_stay_verbatim_and_replay_counts_them_undecodable() {
    let sim = sim(0.004);
    let geocoder = Geocoder::new();
    // Persistent corruption: every redelivery of a broken record is the
    // same damaged bytes, so the consumer's reconnect budget runs out
    // and the frame lands in the dead-letter log verbatim.
    let faults = FaultConfig {
        corrupt_rate: 0.05,
        corrupt_persistent: true,
        ..FaultConfig::recoverable(SEED)
    };
    let run = run_faulted_stream(
        &sim,
        &geocoder,
        &geocoder,
        faults,
        StreamPipelineConfig {
            metrics: MetricsRegistry::enabled(),
            ..Default::default()
        },
    );
    assert!(run.fault_stats.corrupted > 0, "corruption never fired");
    assert!(!run.dead_letters.is_empty(), "no frame was abandoned");
    assert!(
        run.dead_letters
            .entries()
            .iter()
            .all(|l| matches!(l, DeadLetter::Frame(_))),
        "a clean geocoder abandons only frames"
    );

    // Damaged frames cannot be repaired offline: replay counts them,
    // touches nothing, and never panics.
    let log = DeadLetterLog::decode(&run.dead_letters.encode()).expect("log roundtrip");
    let mut sensor = run.sensor;
    let seen_before = sensor.tweets_seen();
    let report = replay_dead_letters(&mut sensor, &log);
    assert_eq!(report.frames_undecodable, log.len() as u64);
    assert_eq!(report.frames_recovered, 0);
    assert_eq!(report.tweets_replayed, 0);
    assert_eq!(sensor.tweets_seen(), seen_before);
}

#[test]
fn checkpoint_retention_keeps_only_the_newest_complete_epochs() {
    let sim = sim(0.004);
    let geocoder = Geocoder::new();
    let store = MemCheckpointStore::new();
    let mut config = shard_config(2);
    config.checkpoint_every = 200;
    config.checkpoint_retain = 1;
    let run = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        FaultConfig::none(),
        Some(&store),
        config,
    )
    .expect("run");
    assert!(run.last_epoch >= 2, "too few epochs to compact");
    let compacted = run
        .metrics
        .counter("checkpoints_compacted_total")
        .expect("compaction counter");
    assert!(compacted > 0, "retention never removed anything");
    assert_eq!(
        run.metrics
            .counter("checkpoint_compact_errors_total")
            .unwrap_or(0),
        0
    );

    // Only the newest complete epoch survives, on every shard.
    for shard in 0..2u32 {
        for epoch in 1..run.last_epoch {
            assert!(
                store.load(shard, epoch).expect("store io").is_none(),
                "shard {shard} epoch {epoch} survived compaction"
            );
        }
        assert!(
            store
                .load(shard, run.last_epoch)
                .expect("store io")
                .is_some(),
            "shard {shard} lost its newest epoch"
        );
    }
}

#[test]
fn resume_after_compaction_reproduces_the_uninterrupted_run() {
    let sim = sim(0.01);
    let geocoder = Geocoder::new();
    let faults = FaultConfig::recoverable(SEED);

    // Uninterrupted reference, no retention games.
    let mut config = shard_config(2);
    config.checkpoint_every = 200;
    let uninterrupted = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        faults.clone(),
        Some(&MemCheckpointStore::new()),
        config.clone(),
    )
    .expect("uninterrupted run");
    let reference = uninterrupted.sensor.expect("reference sensor");

    // Crash mid-run while retaining a single complete epoch: resume
    // must still find everything it needs, because compaction never
    // touches the newest complete epoch.
    let store = MemCheckpointStore::new();
    let mut killed_config = config.clone();
    killed_config.kill_after = Some(500);
    killed_config.checkpoint_retain = 1;
    let killed = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        faults.clone(),
        Some(&store),
        killed_config,
    )
    .expect("killed run");
    assert!(killed.killed);
    assert!(killed.last_epoch >= 1, "crash happened before any epoch");

    let mut resume_config = config;
    resume_config.resume = true;
    resume_config.checkpoint_retain = 1;
    let resumed = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        faults,
        Some(&store),
        resume_config,
    )
    .expect("resumed run");
    assert!(resumed.resumed_from_epoch.is_some());
    let sensor = resumed.sensor.expect("resumed sensor");
    assert_sensors_equal(
        &sensor,
        &reference,
        "resumed-after-compaction vs uninterrupted",
    );
}

#[test]
fn checkpoints_written_by_a_run_decode_standalone() {
    let sim = sim(0.004);
    let geocoder = Geocoder::new();
    let store = MemCheckpointStore::new();
    let mut config = shard_config(2);
    config.checkpoint_every = 300;
    let run = run_sharded_stream(
        &sim,
        &geocoder,
        ShardServices::Shared(&geocoder),
        FaultConfig::none(),
        Some(&store),
        config,
    )
    .expect("run");
    assert!(run.last_epoch >= 1, "no checkpoints written");
    let written = run
        .metrics
        .counter("checkpoints_written_total")
        .expect("written counter");
    assert_eq!(written, run.last_epoch * 2, "2 shards × epochs");
    assert!(run.metrics.counter("checkpoint_bytes_total").unwrap_or(0) > 0);

    // Every stored blob is a valid, self-describing checkpoint.
    for shard in 0..2u32 {
        for epoch in 1..=run.last_epoch {
            let bytes = store
                .load(shard, epoch)
                .expect("store io")
                .expect("checkpoint present");
            let ckpt = SensorCheckpoint::decode(&bytes).expect("decode");
            assert_eq!(ckpt.shard_id, shard);
            assert_eq!(ckpt.shard_count, 2);
            assert_eq!(ckpt.epoch, epoch);
            assert!(ckpt.router_high_water.is_some());
        }
    }
}
