//! Integration tests for the always-on HTTP daemon (`core::serve`).
//!
//! The headline invariants:
//!
//! 1. **Epoch-consistent caching** — within one published epoch the
//!    `ETag` is stable and a conditional `GET` answers `304 Not
//!    Modified` with an empty body; once ingest advances to a new
//!    epoch the tag changes and the full body comes back.
//! 2. **Served bytes are batch bytes** — after ingest drains, the
//!    daemon's `/report` body is byte-identical to the batch
//!    pipeline's rendered paper report for the same simulation and
//!    analytic configuration.
//! 3. **Shutdown is a clean cut** — `POST /shutdown` stops the daemon
//!    only after ingest drains, the closing checkpoint epoch is
//!    complete in the store, and the reported closing fingerprint is
//!    exactly the entity tag the last `/report` carried.
//!
//! Ingest is throttled deterministically with a gated
//! [`LocationService`]: the gate grants a fixed allowance of geocode
//! calls and then parks every later call until the test releases it,
//! so "within an epoch" and "across epochs" are real program states,
//! not sleeps.

use std::net::SocketAddr;
use std::sync::{mpsc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use donorpulse::core::checkpoint::latest_complete_epoch;
use donorpulse::core::shard::ShardConfig;
use donorpulse::core::stream_consumer::StreamPipelineConfig;
use donorpulse::core::{run_serve_daemon, HttpClient, MemCheckpointStore, ServeConfig};
use donorpulse::geo::{GeoServiceError, Geocoder, LocationService, ServiceResponse};
use donorpulse::prelude::*;
use donorpulse::twitter::fault::FaultConfig;

const SEED: u64 = 0x5E12E;

/// Tweets routed per checkpoint epoch in these tests.
const EPOCH_EVERY: u64 = 48;

/// Geocode calls the gate grants before parking ingest: exactly three
/// complete epochs (at 48, 96, 144 routed tweets), then the worker
/// blocks mid-epoch on call 151.
const ALLOWANCE: u64 = 150;

fn sim(scale: f64) -> TwitterSimulation {
    let mut config = GeneratorConfig::paper_scaled(scale);
    config.seed = SEED;
    TwitterSimulation::generate(config).expect("sim")
}

fn analytics_for(sim: &TwitterSimulation) -> PipelineConfig {
    PipelineConfig {
        generator: sim.config().clone(),
        run_user_clustering: false,
        ..Default::default()
    }
}

/// A [`LocationService`] over the infallible [`Geocoder`] that answers
/// a fixed number of calls and then parks every later caller on a
/// condition variable until [`GatedService::release`].
struct GatedService<'g> {
    inner: &'g Geocoder,
    allowance: Mutex<u64>,
    changed: Condvar,
}

impl<'g> GatedService<'g> {
    fn new(inner: &'g Geocoder, allowance: u64) -> Self {
        GatedService {
            inner,
            allowance: Mutex::new(allowance),
            changed: Condvar::new(),
        }
    }

    /// Blocks until the allowance is spent — after this returns, no
    /// further tweet can be admitted until [`release`](Self::release),
    /// so the newest complete checkpoint epoch is pinned.
    fn wait_exhausted(&self) {
        let mut left = self.allowance.lock().expect("gate poisoned");
        while *left > 0 {
            left = self.changed.wait(left).expect("gate poisoned");
        }
    }

    /// Opens the gate permanently and wakes every parked caller.
    fn release(&self) {
        let mut left = self.allowance.lock().expect("gate poisoned");
        *left = u64::MAX;
        self.changed.notify_all();
    }
}

impl LocationService for GatedService<'_> {
    fn locate_user(
        &self,
        profile: Option<&str>,
        geo: Option<(f64, f64)>,
    ) -> Result<ServiceResponse, GeoServiceError> {
        let mut left = self.allowance.lock().expect("gate poisoned");
        while *left == 0 {
            left = self.changed.wait(left).expect("gate poisoned");
        }
        if *left != u64::MAX {
            *left -= 1;
        }
        self.changed.notify_all();
        drop(left);
        self.inner.locate_user(profile, geo)
    }
}

/// Polls `f` every few milliseconds until it yields a value or the
/// deadline passes.
fn poll_until<T>(deadline: Instant, mut f: impl FnMut() -> Option<T>) -> Option<T> {
    loop {
        if let Some(v) = f() {
            return Some(v);
        }
        if Instant::now() > deadline {
            return None;
        }
        thread::sleep(Duration::from_millis(5));
    }
}

/// What the querying client observed; asserted on after the daemon has
/// exited so a failed expectation can never leave it running.
struct Observed {
    etag_pinned: String,
    etag_final: String,
    report_final: Vec<u8>,
}

/// Drives the live daemon: wait for the pinned epoch, exercise the
/// conditional-GET protocol and the error routes, release ingest, and
/// re-check after the final snapshot. Returns `Err` instead of
/// panicking so the caller can always shut the daemon down.
fn exercise(client: &mut HttpClient, gate: &GatedService<'_>) -> Result<Observed, String> {
    macro_rules! check {
        ($cond:expr, $($msg:tt)*) => {
            if !$cond {
                return Err(format!($($msg)*));
            }
        };
    }
    let deadline = Instant::now() + Duration::from_secs(120);

    // Phase 1: the gate has pinned ingest mid-epoch-4, so the newest
    // complete epoch is 3 and nothing can advance it. Wait for the
    // watcher to publish it.
    gate.wait_exhausted();
    let ready = poll_until(deadline, || {
        let reply = client.get("/healthz", None).ok()?;
        let body = String::from_utf8(reply.body).ok()?;
        (reply.status == 200 && body.contains("\"epoch\": 3,")).then_some(body)
    });
    check!(ready.is_some(), "daemon never published the pinned epoch 3");

    // ETag is stable within the pinned epoch: two plain GETs agree,
    // and a conditional GET is answered 304 with an empty body.
    let first = client.get("/report", None).map_err(|e| e.to_string())?;
    check!(
        first.status == 200,
        "/report while pinned: {}",
        first.status
    );
    let etag_pinned = first
        .etag
        .clone()
        .ok_or_else(|| "no ETag on /report".to_string())?;
    let again = client.get("/report", None).map_err(|e| e.to_string())?;
    check!(
        again.etag.as_deref() == Some(etag_pinned.as_str()),
        "ETag drifted within an epoch: {:?} then {:?}",
        first.etag,
        again.etag
    );
    check!(again.body == first.body, "body drifted within an epoch");
    let cond = client
        .get("/report", Some(&etag_pinned))
        .map_err(|e| e.to_string())?;
    check!(
        cond.status == 304,
        "conditional GET within the epoch: {} (want 304)",
        cond.status
    );
    check!(
        cond.body.is_empty(),
        "304 carried {} body bytes",
        cond.body.len()
    );

    // The JSON views share the same tag, and the error routes answer
    // without disturbing the connection.
    let risk = client.get("/risk", None).map_err(|e| e.to_string())?;
    check!(risk.status == 200, "/risk: {}", risk.status);
    check!(
        risk.etag.as_deref() == Some(etag_pinned.as_str()),
        "/risk tag {:?} != /report tag {etag_pinned:?}",
        risk.etag
    );
    let missing = client
        .get("/attention/state/ZZ", None)
        .map_err(|e| e.to_string())?;
    check!(missing.status == 404, "unknown state: {}", missing.status);
    let bad_method = client
        .request("DELETE", "/report", None)
        .map_err(|e| e.to_string())?;
    check!(
        bad_method.status == 405,
        "DELETE /report: {}",
        bad_method.status
    );
    let not_found = client.get("/nope", None).map_err(|e| e.to_string())?;
    check!(not_found.status == 404, "GET /nope: {}", not_found.status);

    // Phase 2: open the gate, let ingest drain, and the tag must move.
    gate.release();
    let done = poll_until(deadline, || {
        let reply = client.get("/healthz", None).ok()?;
        let body = String::from_utf8(reply.body).ok()?;
        body.contains("\"ingest_done\": true").then_some(())
    });
    check!(done.is_some(), "ingest never finished after release");

    let final_reply = client.get("/report", None).map_err(|e| e.to_string())?;
    check!(
        final_reply.status == 200,
        "final /report: {}",
        final_reply.status
    );
    let etag_final = final_reply
        .etag
        .clone()
        .ok_or_else(|| "no ETag on final /report".to_string())?;
    check!(
        etag_final != etag_pinned,
        "ETag did not change across epochs: {etag_pinned}"
    );
    let stale = client
        .get("/report", Some(&etag_pinned))
        .map_err(|e| e.to_string())?;
    check!(
        stale.status == 200,
        "stale tag revalidated: {} (want 200)",
        stale.status
    );
    let fresh = client
        .get("/report", Some(&etag_final))
        .map_err(|e| e.to_string())?;
    check!(
        fresh.status == 304,
        "fresh tag: {} (want 304)",
        fresh.status
    );

    Ok(Observed {
        etag_pinned,
        etag_final,
        report_final: final_reply.body,
    })
}

#[test]
fn daemon_serves_epoch_consistent_etags_and_batch_identical_reports() {
    let sim = sim(0.01);
    let geocoder = Geocoder::new();
    let gate = GatedService::new(&geocoder, ALLOWANCE);
    let store = MemCheckpointStore::new();
    let analytics = analytics_for(&sim);

    let config = ServeConfig {
        workers: 2,
        poll_ms: 1,
        analytics: analytics.clone(),
        shard: ShardConfig {
            shards: 1,
            checkpoint_every: EPOCH_EVERY,
            checkpoint_final: true,
            stream: StreamPipelineConfig {
                metrics: MetricsRegistry::enabled(),
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    };

    // The daemon blocks its calling thread until shutdown, so the
    // client drives it from a scoped sibling thread; the bound
    // ephemeral address arrives over a channel from `on_ready`.
    let (observed, outcome) = thread::scope(|scope| {
        let (addr_tx, addr_rx) = mpsc::channel::<SocketAddr>();
        let gate = &gate;
        let client = scope.spawn(move || {
            let addr = addr_rx.recv().expect("daemon never reported its address");
            let mut client = HttpClient::new(addr);
            let observed = exercise(&mut client, gate);
            // Always reach shutdown, even when an expectation failed —
            // a hung daemon would turn one broken assert into a
            // test-harness timeout.
            gate.release();
            let shutdown = client.post("/shutdown").map_err(|e| e.to_string());
            (observed, shutdown)
        });

        let outcome = run_serve_daemon(
            &sim,
            &geocoder,
            gate,
            FaultConfig::none(),
            &store,
            config,
            |addr| {
                addr_tx.send(addr).expect("test thread gone");
            },
        )
        .expect("daemon run");

        let (observed, shutdown) = client.join().expect("client thread panicked");
        let shutdown = shutdown.expect("POST /shutdown failed");
        assert_eq!(shutdown.status, 200, "shutdown status");
        (observed.expect("client expectations"), outcome)
    });

    // The served tag is the sensor fingerprint, and the closing
    // fingerprint the daemon reports is the one the last /report wore.
    let closing = outcome.closing_fingerprint.expect("ingest completed");
    assert_eq!(observed.etag_final, format!("\"{closing:016x}\""));
    assert_ne!(observed.etag_pinned, observed.etag_final);

    // Shutdown flushed the closing cut: the store's newest complete
    // epoch is the daemon's final epoch, so a resumed run starts from
    // exactly the state the daemon served last.
    let newest = latest_complete_epoch(&store, 1)
        .expect("store readable")
        .expect("closing checkpoint flushed");
    assert_eq!(newest, outcome.final_epoch);
    assert!(
        outcome.final_epoch > 3,
        "ingest never advanced past the pin"
    );
    assert!(!outcome.stream.killed);

    // Served bytes are batch bytes: the daemon's final /report equals
    // the batch pipeline's rendered report for the same configuration.
    let batch = Pipeline::new()
        .run_on(&sim, analytics)
        .expect("batch pipeline");
    let report = PaperReport::from_run(&batch).expect("report").render();
    assert_eq!(
        observed.report_final,
        report.into_bytes(),
        "served /report is not byte-identical to the batch report"
    );

    // The live HTTP counters rode the stream registry.
    let served = outcome
        .metrics
        .counter("http_requests_total")
        .expect("http_requests_total");
    assert!(served > 0, "no requests counted");
    let not_modified = outcome
        .metrics
        .counter("http_responses_304_total")
        .expect("http_responses_304_total");
    assert!(
        not_modified >= 2,
        "expected at least two 304s, saw {not_modified}"
    );
}
